// ResultCache property tests: hit/miss/eviction behaviour, rejection of
// corrupted entries (CRC flip and envelope damage), and the differential
// sweep — a cached answer must be bit-identical to a freshly factored one
// for every (task, substrate) pair, or the cache has manufactured truth.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "robustness/checkpoint.h"
#include "robustness/escalation.h"
#include "robustness/resilient_run.h"
#include "robustness/retry.h"
#include "serve/result_cache.h"

namespace pfact::serve {
namespace {

using robustness::Algorithm;
using robustness::Diagnostic;
using robustness::ReductionTask;
using robustness::Substrate;

ReductionTask gem_xor_task() {
  ReductionTask t;
  t.algorithm = Algorithm::kGem;
  t.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, false}};
  return t;
}

// A genuine PFCK blob (from a real checkpointed run) for envelope tests.
std::string valid_checkpoint_blob() {
  robustness::CheckpointStore store;
  robustness::ResilientOptions ro;
  ro.store = &store;
  ro.checkpoint_every = 2;
  robustness::resilient_run(gem_xor_task(), ro);
  EXPECT_FALSE(store.empty());
  return store.empty() ? std::string() : *store.latest();
}

TEST(ResultCache, TaxonomyIsNamedAndMapped) {
  EXPECT_EQ(all_cache_probes().size(), 4u);
  for (CacheProbe p : all_cache_probes()) {
    EXPECT_STRNE(cache_probe_name(p), "?");
  }
  // Hits and misses are not failures; both corruption classes land on the
  // transient kCheckpointCorrupt — drop and re-factor always recovers.
  EXPECT_EQ(diagnose_cache_probe(CacheProbe::kHit), Diagnostic::kOk);
  EXPECT_EQ(diagnose_cache_probe(CacheProbe::kMiss), Diagnostic::kOk);
  EXPECT_EQ(diagnose_cache_probe(CacheProbe::kCorruptEntry),
            Diagnostic::kCheckpointCorrupt);
  EXPECT_EQ(diagnose_cache_probe(CacheProbe::kEnvelopeRejected),
            Diagnostic::kCheckpointCorrupt);
  EXPECT_EQ(robustness::classify_diagnostic(Diagnostic::kCheckpointCorrupt),
            robustness::FailureKind::kTransient);
}

// The content address must separate everything that determines the answer:
// algorithm, substrate, task shape, circuit, and input assignment.
TEST(ResultCache, KeySeparatesEveryAnswerDeterminingInput) {
  const ReductionTask base = gem_xor_task();
  const std::string key = ResultCache::key_for(base, Substrate::kDouble);
  EXPECT_EQ(key, ResultCache::key_for(base, Substrate::kDouble));

  EXPECT_NE(key, ResultCache::key_for(base, Substrate::kRational));

  ReductionTask other_alg = base;
  other_alg.algorithm = Algorithm::kGems;
  EXPECT_NE(key, ResultCache::key_for(other_alg, Substrate::kDouble));

  ReductionTask other_inputs = base;
  other_inputs.instance =
      circuit::CvpInstance{circuit::xor_circuit(), {false, true}};
  EXPECT_NE(key, ResultCache::key_for(other_inputs, Substrate::kDouble));

  ReductionTask other_circuit = base;
  other_circuit.instance =
      circuit::CvpInstance{circuit::majority3_circuit(), {true, false, true}};
  EXPECT_NE(key, ResultCache::key_for(other_circuit, Substrate::kDouble));

  ReductionTask chain;
  chain.algorithm = Algorithm::kGep;
  chain.u = 1;
  chain.w = 2;
  chain.depth = 3;
  ReductionTask chain2 = chain;
  chain2.depth = 4;
  EXPECT_NE(ResultCache::key_for(chain, Substrate::kDouble),
            ResultCache::key_for(chain2, Substrate::kDouble));
}

TEST(ResultCache, MissThenFillThenHitRoundtripsBitIdentically) {
  ResultCache cache(8);
  const std::string key =
      ResultCache::key_for(gem_xor_task(), Substrate::kDouble);

  CacheEntry out;
  EXPECT_EQ(cache.lookup(key, out), CacheProbe::kMiss);

  CacheEntry entry;
  entry.value = true;
  entry.substrate = Substrate::kSoftFloat53;
  entry.final_checkpoint = valid_checkpoint_blob();
  cache.insert(key, entry);
  EXPECT_EQ(cache.size(), 1u);

  ASSERT_EQ(cache.lookup(key, out), CacheProbe::kHit);
  EXPECT_EQ(out.value, entry.value);
  EXPECT_EQ(out.substrate, entry.substrate);
  EXPECT_EQ(out.final_checkpoint, entry.final_checkpoint);  // byte-for-byte

  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.fills, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.corrupt, 0u);
}

TEST(ResultCache, LeastRecentlyUsedEntryIsEvictedAtCapacity) {
  ResultCache cache(3);
  auto key_n = [](int n) {
    ReductionTask t;
    t.algorithm = Algorithm::kGep;
    t.u = 1;
    t.w = 1;
    t.depth = static_cast<std::size_t>(n);
    return ResultCache::key_for(t, Substrate::kDouble);
  };
  CacheEntry e;
  for (int n = 0; n < 3; ++n) cache.insert(key_n(n), e);
  EXPECT_EQ(cache.size(), 3u);

  // Freshen key 0, then overflow: the eviction victim must be key 1 (the
  // least recently USED), not key 0 (the least recently INSERTED).
  CacheEntry out;
  EXPECT_EQ(cache.lookup(key_n(0), out), CacheProbe::kHit);
  cache.insert(key_n(3), e);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.lookup(key_n(1), out), CacheProbe::kMiss);
  EXPECT_EQ(cache.lookup(key_n(0), out), CacheProbe::kHit);
  EXPECT_EQ(cache.lookup(key_n(3), out), CacheProbe::kHit);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, ReinsertReplacesInsteadOfDuplicating) {
  ResultCache cache(4);
  const std::string key =
      ResultCache::key_for(gem_xor_task(), Substrate::kDouble);
  CacheEntry a;
  a.value = false;
  cache.insert(key, a);
  CacheEntry b;
  b.value = true;
  cache.insert(key, b);
  EXPECT_EQ(cache.size(), 1u);
  CacheEntry out;
  ASSERT_EQ(cache.lookup(key, out), CacheProbe::kHit);
  EXPECT_TRUE(out.value);
}

// Satellite contract: a CRC-flipped entry is classified kCorruptEntry and
// dropped — the damage is reported once and never probed (or served) again.
TEST(ResultCache, CrcFlippedEntryIsRejectedAndDropped) {
  ResultCache cache(4);
  const std::string key =
      ResultCache::key_for(gem_xor_task(), Substrate::kDouble);
  CacheEntry entry;
  entry.value = true;
  entry.final_checkpoint = valid_checkpoint_blob();
  cache.insert(key, entry);
  ASSERT_TRUE(cache.corrupt_entry_for_testing(key));

  CacheEntry out;
  EXPECT_EQ(cache.lookup(key, out), CacheProbe::kCorruptEntry);
  EXPECT_EQ(cache.size(), 0u);  // dropped, not retried
  EXPECT_EQ(cache.lookup(key, out), CacheProbe::kMiss);
  EXPECT_EQ(cache.stats().corrupt, 1u);
}

// The riding checkpoint blob is vetted with the same PFCK envelope check as
// a streamed frame: an entry whose blob was damaged BEFORE the fill (so the
// cache-level CRC still matches) is still refused.
TEST(ResultCache, DamagedEnvelopeIsRejectedAndDropped) {
  ResultCache cache(4);
  const std::string key =
      ResultCache::key_for(gem_xor_task(), Substrate::kDouble);
  std::string blob = valid_checkpoint_blob();
  ASSERT_FALSE(blob.empty());
  blob[blob.size() / 2] = static_cast<char>(blob[blob.size() / 2] ^ 0x01);
  CacheEntry entry;
  entry.value = true;
  entry.final_checkpoint = blob;
  cache.insert(key, entry);

  CacheEntry out;
  EXPECT_EQ(cache.lookup(key, out), CacheProbe::kEnvelopeRejected);
  EXPECT_EQ(cache.lookup(key, out), CacheProbe::kMiss);
  EXPECT_EQ(cache.stats().corrupt, 1u);
}

TEST(ResultCache, ZeroCapacityDisablesTheCache) {
  ResultCache cache(0);
  const std::string key =
      ResultCache::key_for(gem_xor_task(), Substrate::kDouble);
  CacheEntry entry;
  entry.value = true;
  cache.insert(key, entry);
  EXPECT_EQ(cache.size(), 0u);
  CacheEntry out;
  EXPECT_EQ(cache.lookup(key, out), CacheProbe::kMiss);
}

// The differential sweep: for every (task, substrate) pair, the value that
// comes back out of the cache must be bit-identical to an independent fresh
// factorization. The cache may only preserve answers, never drift them.
TEST(ResultCache, CachedAnswersMatchFreshFactorizationAcrossSubstrates) {
  std::vector<ReductionTask> tasks;
  tasks.push_back(gem_xor_task());
  {
    ReductionTask t;
    t.algorithm = Algorithm::kGem;
    t.instance =
        circuit::CvpInstance{circuit::majority3_circuit(), {true, false, true}};
    tasks.push_back(t);
  }
  {
    ReductionTask t;
    t.algorithm = Algorithm::kGems;
    t.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, true}};
    tasks.push_back(t);
  }
  {
    ReductionTask t;
    t.algorithm = Algorithm::kGep;
    t.u = 2;
    t.w = 1;
    t.depth = 2;
    tasks.push_back(t);
  }
  {
    ReductionTask t;
    t.algorithm = Algorithm::kGqr;
    t.u = -1;
    t.w = 1;
    t.depth = 1;
    tasks.push_back(t);
  }

  ResultCache cache(64);
  for (const ReductionTask& task : tasks) {
    for (Substrate sub : robustness::default_ladder(task.algorithm)) {
      if (!robustness::substrate_supported(task.algorithm, sub)) continue;
      const robustness::RunReport fresh =
          robustness::run_on_substrate(task, sub);
      ASSERT_EQ(fresh.diagnostic, Diagnostic::kOk)
          << task.describe() << " on " << robustness::substrate_name(sub);
      CacheEntry entry;
      entry.value = fresh.value;
      entry.substrate = sub;
      cache.insert(ResultCache::key_for(task, sub), entry);

      CacheEntry out;
      ASSERT_EQ(cache.lookup(ResultCache::key_for(task, sub), out),
                CacheProbe::kHit)
          << task.describe();
      const robustness::RunReport again =
          robustness::run_on_substrate(task, sub);
      EXPECT_EQ(out.value, fresh.value) << task.describe();
      EXPECT_EQ(out.value, again.value) << task.describe();
      EXPECT_EQ(out.value, task.expected()) << task.describe();
      EXPECT_EQ(out.substrate, sub);
    }
  }
}

}  // namespace
}  // namespace pfact::serve
