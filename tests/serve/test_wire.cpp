// Wire-protocol unit tests: payload codecs round-trip bit-exactly, and the
// frame layer rejects every way a frame can arrive damaged (CRC mismatch,
// truncation, desynchronization, deadline expiry) instead of half-parsing.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <string>
#include <thread>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "robustness/escalation.h"
#include "robustness/guarded_run.h"
#include "robustness/retry.h"
#include "serve/wire.h"

namespace pfact::serve {
namespace {

using robustness::Algorithm;
using robustness::Diagnostic;
using robustness::ReductionTask;
using robustness::RunReport;
using robustness::Substrate;

ReductionTask gem_xor_task() {
  ReductionTask task;
  task.algorithm = Algorithm::kGem;
  task.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, false}};
  return task;
}

TEST(Wire, RequestRoundTripsACircuitTask) {
  TaskRequest req;
  req.task = gem_xor_task();
  req.substrate = Substrate::kSoftFloat53;
  req.limits.max_steps = 77;
  req.limits.timeout = std::chrono::milliseconds(1234);
  req.limits.max_order = 4096;
  req.limits.decode_tolerance = 1e-9;
  req.checkpoint_every = 3;
  req.resume_step = 42;
  req.resume_blob = "not a real blob";
  req.fault.fault = robustness::FaultClass::kTornWrite;
  req.fault.seed = 17;
  req.kill.mode = KillPlan::Mode::kSigsegv;
  req.kill.after_saves = 5;
  req.rlimits.address_space_bytes = 1u << 30;
  req.rlimits.cpu_seconds = 9;

  TaskRequest back;
  ASSERT_TRUE(decode_request(encode_request(req), back));
  EXPECT_EQ(back.task.algorithm, req.task.algorithm);
  EXPECT_EQ(back.task.instance.circuit.num_inputs(),
            req.task.instance.circuit.num_inputs());
  EXPECT_EQ(back.task.instance.circuit.num_gates(),
            req.task.instance.circuit.num_gates());
  EXPECT_EQ(back.task.instance.inputs, req.task.instance.inputs);
  EXPECT_EQ(back.task.expected(), req.task.expected());
  EXPECT_EQ(back.substrate, req.substrate);
  EXPECT_EQ(back.limits.max_steps, req.limits.max_steps);
  EXPECT_EQ(back.limits.timeout, req.limits.timeout);
  EXPECT_EQ(back.limits.max_order, req.limits.max_order);
  EXPECT_EQ(back.limits.decode_tolerance, req.limits.decode_tolerance);
  EXPECT_EQ(back.checkpoint_every, req.checkpoint_every);
  EXPECT_EQ(back.resume_step, req.resume_step);
  EXPECT_EQ(back.resume_blob, req.resume_blob);
  EXPECT_EQ(back.fault.fault, req.fault.fault);
  EXPECT_EQ(back.fault.seed, req.fault.seed);
  EXPECT_EQ(back.kill.mode, req.kill.mode);
  EXPECT_EQ(back.kill.after_saves, req.kill.after_saves);
  EXPECT_EQ(back.rlimits.address_space_bytes, req.rlimits.address_space_bytes);
  EXPECT_EQ(back.rlimits.cpu_seconds, req.rlimits.cpu_seconds);
}

TEST(Wire, RequestRoundTripsAChainTaskWithEmptyInstance) {
  TaskRequest req;
  req.task.algorithm = Algorithm::kGqr;
  req.task.u = 1;
  req.task.w = -1;
  req.task.depth = 2;

  TaskRequest back;
  ASSERT_TRUE(decode_request(encode_request(req), back));
  EXPECT_EQ(back.task.algorithm, Algorithm::kGqr);
  EXPECT_EQ(back.task.instance.circuit.num_inputs(), 0u);
  EXPECT_EQ(back.task.instance.circuit.num_gates(), 0u);
  EXPECT_EQ(back.task.u, 1);
  EXPECT_EQ(back.task.w, -1);
  EXPECT_EQ(back.task.depth, 2u);
}

TEST(Wire, ResultRoundTripsAFullRealReport) {
  const RunReport rep = run_on_substrate(gem_xor_task(), Substrate::kDouble);
  ASSERT_EQ(rep.diagnostic, Diagnostic::kOk);
  ASSERT_GT(rep.trace.size(), 0u);

  RunReport back;
  ASSERT_TRUE(decode_result(encode_result(rep), back));
  EXPECT_EQ(back.diagnostic, rep.diagnostic);
  EXPECT_EQ(back.value, rep.value);
  EXPECT_EQ(back.algorithm, rep.algorithm);
  EXPECT_EQ(back.order, rep.order);
  EXPECT_EQ(back.decoded_entry, rep.decoded_entry);  // bit-equal
  EXPECT_EQ(back.steps_used, rep.steps_used);
  EXPECT_EQ(back.offending_row, rep.offending_row);
  EXPECT_EQ(back.offending_col, rep.offending_col);
  EXPECT_EQ(back.detail, rep.detail);
  ASSERT_EQ(back.trace.size(), rep.trace.size());
  for (std::size_t i = 0; i < rep.trace.size(); ++i) {
    EXPECT_EQ(back.trace[i].column, rep.trace[i].column);
    EXPECT_EQ(back.trace[i].pivot_pos, rep.trace[i].pivot_pos);
    EXPECT_EQ(back.trace[i].pivot_row, rep.trace[i].pivot_row);
    EXPECT_EQ(back.trace[i].action, rep.trace[i].action);
  }
}

TEST(Wire, TruncatedPayloadsDoNotDecode) {
  const std::string req = encode_request(TaskRequest{});
  for (std::size_t keep : {std::size_t{0}, std::size_t{3}, req.size() - 1}) {
    TaskRequest out;
    EXPECT_FALSE(decode_request(req.substr(0, keep), out)) << keep;
  }
  const std::string res = encode_result(RunReport{});
  RunReport out;
  EXPECT_FALSE(decode_result(res.substr(0, res.size() - 1), out));
  EXPECT_FALSE(decode_result(res + "x", out));  // trailing garbage
}

class FramePipe : public ::testing::Test {
 protected:
  void SetUp() override {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    rd_ = fds[0];
    wr_ = fds[1];
  }
  void TearDown() override {
    if (rd_ >= 0) ::close(rd_);
    if (wr_ >= 0) ::close(wr_);
  }
  void close_wr() {
    ::close(wr_);
    wr_ = -1;
  }
  int rd_ = -1;
  int wr_ = -1;
};

TEST_F(FramePipe, FramesRoundTripWithTypeAndPayload) {
  const std::string payload = encode_checkpoint_frame(7, "blob bytes");
  ASSERT_EQ(write_frame(wr_, FrameType::kCheckpoint, payload), WireStatus::kOk);
  close_wr();

  FrameType type = FrameType::kRequest;
  std::string got;
  ASSERT_EQ(read_frame(rd_, type, got), WireStatus::kOk);
  EXPECT_EQ(type, FrameType::kCheckpoint);
  EXPECT_EQ(got, payload);
  std::uint64_t step = 0;
  std::string blob;
  ASSERT_TRUE(decode_checkpoint_frame(got, step, blob));
  EXPECT_EQ(step, 7u);
  EXPECT_EQ(blob, "blob bytes");
  // And the stream ends cleanly.
  EXPECT_EQ(read_frame(rd_, type, got), WireStatus::kEof);
}

TEST_F(FramePipe, CorruptedPayloadIsRejectedByCrc) {
  std::string frame;
  {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_EQ(write_frame(fds[1], FrameType::kResult, "payload"), WireStatus::kOk);
    ::close(fds[1]);
    char buf[256];
    const ssize_t n = ::read(fds[0], buf, sizeof(buf));
    ASSERT_GT(n, 0);
    frame.assign(buf, static_cast<std::size_t>(n));
    ::close(fds[0]);
  }
  frame[kFrameHeaderBytes] ^= 0x01;  // flip one payload bit
  ASSERT_EQ(::write(wr_, frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));
  close_wr();
  FrameType type = FrameType::kRequest;
  std::string payload;
  EXPECT_EQ(read_frame(rd_, type, payload), WireStatus::kCrcMismatch);
}

TEST_F(FramePipe, StreamDyingMidFrameIsTruncatedNotEof) {
  std::string frame;
  {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_EQ(write_frame(fds[1], FrameType::kResult, "payload"), WireStatus::kOk);
    ::close(fds[1]);
    char buf[256];
    const ssize_t n = ::read(fds[0], buf, sizeof(buf));
    ASSERT_GT(n, 0);
    frame.assign(buf, static_cast<std::size_t>(n));
    ::close(fds[0]);
  }
  // Ship only part of the frame, then kill the stream — a mid-write death.
  ASSERT_EQ(::write(wr_, frame.data(), frame.size() - 3),
            static_cast<ssize_t>(frame.size() - 3));
  close_wr();
  FrameType type = FrameType::kRequest;
  std::string payload;
  EXPECT_EQ(read_frame(rd_, type, payload), WireStatus::kTruncated);
}

TEST_F(FramePipe, DesynchronizedStreamIsBadMagic) {
  const std::string junk(kFrameHeaderBytes, 'x');
  ASSERT_EQ(::write(wr_, junk.data(), junk.size()),
            static_cast<ssize_t>(junk.size()));
  close_wr();
  FrameType type = FrameType::kRequest;
  std::string payload;
  EXPECT_EQ(read_frame(rd_, type, payload), WireStatus::kBadMagic);
}

// --- fault-injected partial I/O -------------------------------------------
// POSIX pipes may deliver any prefix of a write, and any blocking syscall
// may return early with EINTR. The frame layer must treat both as normal
// weather: reassemble dribbled bytes, retry interrupted transfers, and
// still classify a genuinely dead stream as kTruncated, never as success.

// Captures a fully-encoded wire frame so the tests below can replay it one
// morsel at a time.
std::string capture_frame(FrameType type, const std::string& payload) {
  int fds[2];
  EXPECT_EQ(::pipe(fds), 0);
  EXPECT_EQ(write_frame(fds[1], type, payload), WireStatus::kOk);
  ::close(fds[1]);
  std::string frame;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fds[0], buf, sizeof(buf))) > 0) {
    frame.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fds[0]);
  return frame;
}

TEST_F(FramePipe, DribbledBytesReassembleIntoOneFrame) {
  const std::string frame =
      capture_frame(FrameType::kCheckpoint, encode_checkpoint_frame(3, "abc"));
  std::thread dribbler([this, &frame] {
    // Worst-case peer: one to five bytes at a time, with pauses straddling
    // every boundary the reader cares about (magic, header, payload, crc).
    std::size_t off = 0;
    while (off < frame.size()) {
      const std::size_t n = std::min<std::size_t>(1 + off % 5,
                                                  frame.size() - off);
      ASSERT_EQ(::write(wr_, frame.data() + off, n), static_cast<ssize_t>(n));
      off += n;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    close_wr();
  });
  FrameType type = FrameType::kRequest;
  std::string payload;
  EXPECT_EQ(read_frame(rd_, type, payload), WireStatus::kOk);
  dribbler.join();
  EXPECT_EQ(type, FrameType::kCheckpoint);
  std::uint64_t step = 0;
  std::string blob;
  ASSERT_TRUE(decode_checkpoint_frame(payload, step, blob));
  EXPECT_EQ(step, 3u);
  EXPECT_EQ(blob, "abc");
}

TEST_F(FramePipe, DribbleThenDeathMidFrameIsTruncated) {
  const std::string frame =
      capture_frame(FrameType::kResult, std::string(1024, 'r'));
  std::thread dribbler([this, &frame] {
    // Deliver a prefix that ends inside the payload, then die.
    const std::size_t keep = kFrameHeaderBytes + 100;
    for (std::size_t off = 0; off < keep; off += 7) {
      const std::size_t n = std::min<std::size_t>(7, keep - off);
      ASSERT_EQ(::write(wr_, frame.data() + off, n), static_cast<ssize_t>(n));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    close_wr();
  });
  FrameType type = FrameType::kRequest;
  std::string payload;
  EXPECT_EQ(read_frame(rd_, type, payload), WireStatus::kTruncated);
  dribbler.join();
}

volatile std::sig_atomic_t g_usr1_hits = 0;
void count_usr1(int) { g_usr1_hits = g_usr1_hits + 1; }

// A signal storm interrupts both ends of a transfer big enough that every
// syscall blocks (the payload is many times the pipe buffer). The handler
// is installed WITHOUT SA_RESTART, so reads and writes genuinely fail with
// EINTR — the retry loops in write_frame/read_frame must absorb them.
TEST_F(FramePipe, EintrStormDoesNotCorruptOrAbortTheTransfer) {
  struct sigaction sa {};
  sa.sa_handler = count_usr1;
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  sigemptyset(&sa.sa_mask);
  struct sigaction old {};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);
  g_usr1_hits = 0;

  const std::string payload(4u << 20, 'p');  // 4 MiB >> 64 KiB pipe buffer
  WireStatus wstatus = WireStatus::kIoError;
  std::atomic<bool> done{false};

  std::thread writer([this, &payload, &wstatus] {
    wstatus = write_frame(wr_, FrameType::kCheckpoint, payload);
    close_wr();
  });
  std::thread pest([&done, &writer, self = pthread_self()] {
    for (int i = 0; i < 400 && !done.load(); ++i) {
      ::pthread_kill(writer.native_handle(), SIGUSR1);
      ::pthread_kill(self, SIGUSR1);  // the reading (main) thread
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  FrameType type = FrameType::kRequest;
  std::string got;
  const WireStatus rstatus = read_frame(rd_, type, got);
  done.store(true);
  pest.join();
  writer.join();
  ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);

  EXPECT_GT(g_usr1_hits, 0);  // the storm really landed
  EXPECT_EQ(wstatus, WireStatus::kOk);
  ASSERT_EQ(rstatus, WireStatus::kOk);
  EXPECT_EQ(type, FrameType::kCheckpoint);
  EXPECT_EQ(got, payload);  // bit-identical despite every interruption
}

TEST_F(FramePipe, SilentPeerHitsTheDeadline) {
  FrameType type = FrameType::kRequest;
  std::string payload;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(read_frame(rd_, type, payload,
                       t0 + std::chrono::milliseconds(50)),
            WireStatus::kTimeout);
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(40));
}

// --- peer-vanished classification (kConnReset) ------------------------------
//
// EPIPE and ECONNRESET are the two faces of the same event — the peer is
// gone — reported at different moments: EPIPE when the kernel already knows
// at write time, ECONNRESET when a TCP peer closed with data still in
// flight (its close turns into an RST). Both must classify as the single
// transient WireStatus::kConnReset, never the terminal kIoError.

TEST(WireConnReset, IsNamedAndDiagnosesTransient) {
  EXPECT_STREQ(wire_status_name(WireStatus::kConnReset), "conn-reset");
  EXPECT_EQ(robustness::classify_diagnostic(Diagnostic::kConnReset),
            robustness::FailureKind::kTransient);
}

TEST(WireConnReset, EpipeOnWriteClassifiesAsConnReset) {
  ::signal(SIGPIPE, SIG_IGN);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ::close(sv[1]);  // the reader is gone before we ever write

  // A payload far beyond the socket buffer, so even if the first write is
  // absorbed, a later one must observe the dead peer.
  const std::string payload(1u << 20, 'x');
  EXPECT_EQ(write_frame(sv[0], FrameType::kRequest, payload),
            WireStatus::kConnReset);
  ::close(sv[0]);
}

TEST(WireConnReset, TcpRstOnWriteClassifiesAsConnReset) {
  ::signal(SIGPIPE, SIG_IGN);
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)), 0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len), 0);

  const int client = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(client, 0);
  ASSERT_EQ(::connect(client, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)), 0);
  const int server = ::accept(listen_fd, nullptr, nullptr);
  ASSERT_GE(server, 0);

  // The peer closes with our data UNREAD: its close emits an RST, and the
  // next writes observe ECONNRESET (possibly EPIPE on the one after — both
  // must land on kConnReset).
  ASSERT_EQ(write_frame(client, FrameType::kRequest, "unread"),
            WireStatus::kOk);
  ::close(server);

  WireStatus st = WireStatus::kOk;
  const std::string payload(1u << 20, 'y');
  for (int i = 0; i < 10 && st == WireStatus::kOk; ++i) {
    st = write_frame(client, FrameType::kRequest, payload);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(st, WireStatus::kConnReset);
  ::close(client);
  ::close(listen_fd);
}

TEST(WireConnReset, TcpRstOnReadClassifiesAsConnReset) {
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)), 0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len), 0);

  const int client = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(client, 0);
  ASSERT_EQ(::connect(client, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)), 0);
  const int server = ::accept(listen_fd, nullptr, nullptr);
  ASSERT_GE(server, 0);

  // Abortive close: SO_LINGER with zero timeout turns close() into an RST
  // instead of an orderly FIN, so the client's pending read fails with
  // ECONNRESET rather than seeing EOF.
  struct linger lg {};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ASSERT_EQ(::setsockopt(server, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg)), 0);
  ::close(server);

  FrameType type = FrameType::kRequest;
  std::string payload;
  const WireStatus st = read_frame(
      client, type, payload,
      std::chrono::steady_clock::now() + std::chrono::seconds(5));
  // kConnReset when the RST races ahead of the read; a clean kEof would
  // mean the RST path silently degraded to a FIN — reject that.
  EXPECT_EQ(st, WireStatus::kConnReset) << wire_status_name(st);
  ::close(client);
  ::close(listen_fd);
}

}  // namespace
}  // namespace pfact::serve
