// The sharded self-healing service, end to end: taxonomy totality, probe
// echoes, consistent-hash routing with cache locality, failover around
// killed shards, bulkhead eviction of wedged (SIGSTOPped) shards, brownout
// admission, bit-reproducible restart backoff, and the headline contract —
// a shard death mid-job yields the same bit-equal decode (value AND pivot
// trace) as the unsharded baseline service.
//
// Rides the `serve` ctest label: real forks, real SIGKILL/SIGSTOP, so
// sanitizer lanes skip it like the rest of tests/serve.

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <vector>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "obs/counters.h"
#include "robustness/escalation.h"
#include "robustness/retry.h"
#include "serve/frontend.h"
#include "serve/queue.h"
#include "serve/result_cache.h"
#include "serve/router.h"
#include "serve/shard.h"
#include "serve/wire.h"

namespace pfact::serve {
namespace {

using obs::Counter;
using obs::CounterDelta;
using obs::ScopedCounters;
using robustness::Algorithm;
using robustness::Diagnostic;
using robustness::ReductionTask;

constexpr bool kObsOn = PFACT_OBS_ENABLED != 0;

ReductionTask gem_xor_task(bool a, bool b) {
  ReductionTask t;
  t.algorithm = Algorithm::kGem;
  t.instance = circuit::CvpInstance{circuit::xor_circuit(), {a, b}};
  return t;
}

ReductionTask parity_task(std::size_t bits, unsigned mask) {
  ReductionTask t;
  t.algorithm = Algorithm::kGem;
  std::vector<bool> in(bits);
  for (std::size_t i = 0; i < bits; ++i) in[i] = ((mask >> i) & 1u) != 0;
  t.instance = circuit::CvpInstance{circuit::parity_circuit(bits), in};
  return t;
}

RouterOptions small_router(std::size_t shards) {
  RouterOptions ro;
  ro.shards = shards;
  ro.service.dispatchers = 1;
  ro.service.pool.workers = 1;
  ro.service.queue_depth = 8;
  ro.service.cache_capacity = 64;
  ro.probe_interval = std::chrono::milliseconds(25);
  ro.probe_deadline = std::chrono::milliseconds(250);
  ro.restart.base_delay = std::chrono::milliseconds(5);
  ro.restart.max_delay = std::chrono::milliseconds(100);
  ro.restart.jitter_seed = 7;
  return ro;
}

bool traces_equal(const factor::PivotTrace& a, const factor::PivotTrace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].column != b[i].column || a[i].pivot_pos != b[i].pivot_pos ||
        a[i].pivot_row != b[i].pivot_row || a[i].action != b[i].action) {
      return false;
    }
  }
  return true;
}

// --- taxonomy totality (the four legs, runtime half of PL019) --------------

TEST(ShardTaxonomy, EveryShardStatusHasAllFourLegs) {
  ASSERT_EQ(all_shard_statuses().size(), 5u);
  for (const ShardStatus s : all_shard_statuses()) {
    EXPECT_STRNE(shard_status_name(s), "?");
    EXPECT_NE(obs::counter_name(shard_status_counter(s)), nullptr);
    // Non-serving states are transient moments, never fatal verdicts.
    if (s != ShardStatus::kServing) {
      EXPECT_NE(diagnose_shard_status(s), Diagnostic::kOk);
      EXPECT_NE(diagnose_shard_status(s), Diagnostic::kInternalError);
    }
  }
  EXPECT_EQ(shard_status_counter(ShardStatus::kStarting),
            Counter::kShardStarting);
  EXPECT_EQ(shard_status_counter(ShardStatus::kServing),
            Counter::kShardServing);
  EXPECT_EQ(shard_status_counter(ShardStatus::kUnresponsive),
            Counter::kShardUnresponsive);
  EXPECT_EQ(shard_status_counter(ShardStatus::kDead), Counter::kShardDead);
  EXPECT_EQ(shard_status_counter(ShardStatus::kRestarting),
            Counter::kShardRestarting);
}

TEST(ShardTaxonomy, EveryRouterStatusHasAllFourLegs) {
  ASSERT_EQ(all_router_statuses().size(), 4u);
  for (const RouterStatus s : all_router_statuses()) {
    EXPECT_STRNE(router_status_name(s), "?");
    EXPECT_NE(obs::counter_name(router_status_counter(s)), nullptr);
    EXPECT_NE(diagnose_router_status(s), Diagnostic::kInternalError);
  }
  EXPECT_EQ(router_status_counter(RouterStatus::kRouted),
            Counter::kRouterRoutes);
  EXPECT_EQ(router_status_counter(RouterStatus::kFailedOver),
            Counter::kRouterFailovers);
  EXPECT_EQ(router_status_counter(RouterStatus::kBrownoutShed),
            Counter::kRouterBrownoutSheds);
  EXPECT_EQ(router_status_counter(RouterStatus::kAllShardsDown),
            Counter::kRouterAllShardsDown);
  // Shed shapes must read as retryable to a client's decision table.
  EXPECT_EQ(diagnose_router_status(RouterStatus::kBrownoutShed),
            Diagnostic::kOverloaded);
  EXPECT_EQ(diagnose_router_status(RouterStatus::kAllShardsDown),
            Diagnostic::kConnReset);
}

// --- the probe frame --------------------------------------------------------

TEST(ShardProbe, FrontendEchoesProbeWithoutTouchingTheQueue) {
  ServiceOptions so;
  so.dispatchers = 1;
  so.pool.workers = 1;
  ReductionService service(so);
  FrontendOptions fo;
  fo.unix_path =
      "/tmp/pfact_test_probe_" + std::to_string(::getpid()) + ".sock";
  Frontend frontend(service, fo);
  ASSERT_TRUE(frontend.running());

  ScopedCounters sc;
  EXPECT_TRUE(probe_shard(fo.unix_path, std::chrono::milliseconds(2000)));
  EXPECT_TRUE(probe_shard(fo.unix_path, std::chrono::milliseconds(2000)));
  if (kObsOn) {
    const CounterDelta d = sc.delta();
    EXPECT_EQ(d[Counter::kFrontendProbes], 2u);
  }
  // Probes are heartbeats, not conversations: no submission reached the
  // service and no FrontendStatus ending was recorded.
  EXPECT_EQ(service.stats().submitted, 0u);
}

TEST(ShardProbe, DeadSocketProbesFalse) {
  EXPECT_FALSE(probe_shard("/tmp/pfact_no_such_shard.sock",
                           std::chrono::milliseconds(100)));
}

// --- routing, locality, healing --------------------------------------------

TEST(ShardRouterTest, RoutesToHomeShardAndHitsItsCache) {
  ShardRouter router(small_router(2));
  ASSERT_TRUE(router.wait_all_serving(std::chrono::seconds(10)));

  const ReductionTask task = gem_xor_task(true, false);
  ScopedCounters sc;
  const RouteResult first = router.submit(task);
  ASSERT_EQ(first.status, RouterStatus::kRouted) << "failovers="
                                                 << first.failovers;
  EXPECT_TRUE(first.response.certified);
  EXPECT_EQ(first.response.value, task.expected());
  EXPECT_EQ(first.shard, router.home_shard(task));

  const RouteResult second = router.submit(task);
  ASSERT_EQ(second.status, RouterStatus::kRouted);
  EXPECT_TRUE(second.response.from_cache)
      << "repeat of the same key must hit the home shard's cache";
  EXPECT_EQ(second.shard, first.shard);
  if (kObsOn) {
    const CounterDelta d = sc.delta();
    EXPECT_EQ(d[Counter::kRouterRoutes], 2u);
    EXPECT_EQ(d[Counter::kRouterBrownoutSheds], 0u);
    EXPECT_EQ(d[Counter::kRouterAllShardsDown], 0u);
  }

  const ShardRouter::Stats st = router.stats();
  EXPECT_EQ(st.answered, 2u);
  EXPECT_EQ(st.answered_by_home, 2u);
  EXPECT_EQ(st.status(RouterStatus::kRouted), 2u);
}

TEST(ShardRouterTest, HomeShardIsDeterministicAndSpread) {
  ShardRouter router(small_router(3));
  // Deterministic: same task, same home, every time.
  for (unsigned m = 0; m < 4; ++m) {
    const ReductionTask t = gem_xor_task((m & 1) != 0, (m & 2) != 0);
    EXPECT_EQ(router.home_shard(t), router.home_shard(t));
  }
  // Spread: across a family of keys, at least two shards get work (a
  // degenerate ring that homes everything on one shard would make sharding
  // pointless).
  std::vector<bool> hit(3, false);
  for (unsigned m = 0; m < 16; ++m) {
    hit[router.home_shard(parity_task(4, m))] = true;
  }
  int used = 0;
  for (const bool h : hit) used += h ? 1 : 0;
  EXPECT_GE(used, 2);
}

TEST(ShardRouterTest, FailsOverAroundAKilledShardAndHeals) {
  ShardRouter router(small_router(2));
  ASSERT_TRUE(router.wait_all_serving(std::chrono::seconds(10)));

  // Warm one key on each shard so the brownout window keeps serving them.
  std::vector<ReductionTask> warm;
  for (unsigned m = 0; m < 8 && warm.size() < 2; ++m) {
    const ReductionTask t = parity_task(3, m);
    const RouteResult r = router.submit(t);
    ASSERT_EQ(r.status, RouterStatus::kRouted);
    if (warm.empty() || router.home_shard(t) != router.home_shard(warm[0])) {
      warm.push_back(t);
    }
  }
  ASSERT_EQ(warm.size(), 2u) << "need a warm key on each shard";

  ScopedCounters sc;
  const std::size_t victim = router.home_shard(warm[0]);
  ASSERT_TRUE(router.kill_shard_for_testing(victim, SIGKILL));

  // The victim's warm key must keep answering throughout the outage — by
  // failover to the survivor (which recomputes and re-verifies) or, later,
  // by the healed home shard. Every ending must be classified.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(20);
  bool failed_over = false;
  bool healed = false;
  while (std::chrono::steady_clock::now() < deadline && !healed) {
    const RouteResult r = router.submit(warm[0]);
    switch (r.status) {
      case RouterStatus::kRouted:
        EXPECT_TRUE(r.response.certified);
        EXPECT_EQ(r.response.value, warm[0].expected());
        healed = failed_over;  // home answered again after the detour
        break;
      case RouterStatus::kFailedOver:
        EXPECT_TRUE(r.response.certified);
        EXPECT_EQ(r.response.value, warm[0].expected());
        failed_over = true;
        break;
      case RouterStatus::kBrownoutShed:
        EXPECT_EQ(r.response.status, FrontendStatus::kOverloaded);
        break;
      case RouterStatus::kAllShardsDown:
        // Transiently possible while the survivor is also saturated; must
        // still be classified.
        EXPECT_NE(r.response.report.diagnostic, Diagnostic::kInternalError);
        break;
    }
  }
  EXPECT_TRUE(failed_over) << "the killed home shard never forced a failover";
  EXPECT_TRUE(healed) << "the killed shard never healed back to serving";
  EXPECT_TRUE(router.wait_all_serving(std::chrono::seconds(20)));
  const ShardRouter::Stats st = router.stats();
  EXPECT_GE(st.restarts, 1u);
  EXPECT_GE(st.status(RouterStatus::kFailedOver), 1u);
  // ShardStatus coverage for the death path: dead and restarting were both
  // observed states, and serving was re-observed after the heal.
  EXPECT_GE(st.shard_status_seen[static_cast<std::size_t>(ShardStatus::kDead)],
            1u);
  EXPECT_GE(st.shard_status_seen[static_cast<std::size_t>(
                ShardStatus::kRestarting)],
            1u);
  if (kObsOn) {
    const CounterDelta d = sc.delta();
    EXPECT_GE(d[Counter::kRouterFailovers], 1u);
    EXPECT_GE(d[Counter::kRouterRestarts], 1u);
    EXPECT_GE(d[Counter::kShardDead], 1u);
    EXPECT_GE(d[Counter::kShardRestarting], 1u);
    EXPECT_GE(d[Counter::kShardStarting], 1u);
    EXPECT_GE(d[Counter::kShardServing], 1u);
    EXPECT_GE(d[Counter::kRouterProbes], 1u);
  }
}

TEST(ShardRouterTest, BrownoutShedsFreshWorkButServesWarmKeys) {
  ShardRouter router(small_router(2));
  ASSERT_TRUE(router.wait_all_serving(std::chrono::seconds(10)));

  const ReductionTask warm_task = gem_xor_task(true, true);
  ASSERT_EQ(router.submit(warm_task).status, RouterStatus::kRouted);

  // Kill a shard; the supervision loop marks it dead within a tick or two.
  ASSERT_TRUE(router.kill_shard_for_testing(0, SIGKILL));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!router.browned_out() &&
         std::chrono::steady_clock::now() < deadline) {
  }
  ASSERT_TRUE(router.browned_out());

  // Degraded: a never-seen key is shed with a classified, retryable
  // refusal; the warm key still answers (from cache or by failover).
  ScopedCounters sc;
  const RouteResult fresh = router.submit(parity_task(5, 21));
  EXPECT_EQ(fresh.status, RouterStatus::kBrownoutShed);
  EXPECT_EQ(fresh.response.status, FrontendStatus::kOverloaded);
  EXPECT_EQ(fresh.response.report.diagnostic, Diagnostic::kOverloaded);

  const RouteResult warm = router.submit(warm_task);
  EXPECT_TRUE(warm.status == RouterStatus::kRouted ||
              warm.status == RouterStatus::kFailedOver)
      << router_status_name(warm.status);
  EXPECT_TRUE(warm.response.certified);
  EXPECT_EQ(warm.response.value, warm_task.expected());
  if (kObsOn) {
    const CounterDelta d = sc.delta();
    EXPECT_GE(d[Counter::kRouterBrownoutSheds], 1u);
  }

  // Brownout is a state, not a ratchet: once the shard heals, fresh keys
  // are admitted again.
  ASSERT_TRUE(router.wait_all_serving(std::chrono::seconds(20)));
  const RouteResult after = router.submit(parity_task(5, 21));
  EXPECT_TRUE(after.status == RouterStatus::kRouted ||
              after.status == RouterStatus::kFailedOver);
  EXPECT_EQ(after.response.value, parity_task(5, 21).expected());
}

TEST(ShardRouterTest, WedgedShardIsEvictedNotWaitedOn) {
  RouterOptions ro = small_router(2);
  ro.probe_deadline = std::chrono::milliseconds(150);
  ShardRouter router(ro);
  ASSERT_TRUE(router.wait_all_serving(std::chrono::seconds(10)));

  // SIGSTOP: the process is alive (waitpid sees nothing) but its event loop
  // is frozen — the exact failure mode only the probe deadline can catch.
  ASSERT_TRUE(router.kill_shard_for_testing(1, SIGSTOP));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  bool evicted = false;
  while (!evicted && std::chrono::steady_clock::now() < deadline) {
    evicted = router.stats().evictions >= 1;
  }
  EXPECT_TRUE(evicted) << "probe deadline never evicted the wedged shard";
  // SIGKILL (delivered by the eviction) kills even a stopped process; the
  // reaper then classifies and heals it like any other death.
  EXPECT_TRUE(router.wait_all_serving(std::chrono::seconds(20)));
  const ShardRouter::Stats st = router.stats();
  EXPECT_GE(st.shard_status_seen[static_cast<std::size_t>(
                ShardStatus::kUnresponsive)],
            1u);
  EXPECT_GE(st.restarts, 1u);
}

TEST(ShardRouterTest, RestartBackoffIsSeededAndBitReproducible) {
  RouterOptions ro = small_router(1);
  ro.restart.jitter_seed = 42;
  ShardRouter a(ro);
  ShardRouter b(ro);
  robustness::RetryPolicy mirror = ro.restart;
  for (std::size_t attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_EQ(a.restart_delay(attempt), b.restart_delay(attempt));
    EXPECT_EQ(a.restart_delay(attempt), mirror.backoff(attempt));
  }
  robustness::RetryPolicy other = ro.restart;
  other.jitter_seed = 43;
  bool diverged = false;
  for (std::size_t attempt = 1; attempt <= 6 && !diverged; ++attempt) {
    diverged = other.backoff(attempt) != a.restart_delay(attempt);
  }
  EXPECT_TRUE(diverged) << "jitter seed does not reach the restart schedule";
}

// --- the headline: shard death mid-job == unsharded baseline, bit for bit --

TEST(ShardRouterTest, KillMidJobDecodesBitEqualToUnshardedBaseline) {
  // Unsharded baseline: the same service configuration, one process.
  RouterOptions ro = small_router(2);
  ReductionService baseline(ro.service);
  const ReductionTask task = parity_task(4, 11);
  const ServiceResponse base = baseline.run(task);
  ASSERT_EQ(base.admission, Admission::kAccepted);
  ASSERT_TRUE(base.report.certified);

  ShardRouter router(ro);
  ASSERT_TRUE(router.wait_all_serving(std::chrono::seconds(10)));
  // Serve the key once so it stays admissible through the brownout window.
  ASSERT_EQ(router.submit(task).status, RouterStatus::kRouted);

  // Kill the home shard at every boundary we can reach from outside: before
  // the submit, and mid-flight via a racing kill. Whatever the interleaving,
  // every certified answer must match the baseline bit for bit — value AND
  // pivot trace — because a failover re-runs the whole deterministic
  // reduction, never resumes a half-trusted one.
  for (int round = 0; round < 3; ++round) {
    router.kill_shard_for_testing(router.home_shard(task), SIGKILL);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    bool answered = false;
    while (!answered && std::chrono::steady_clock::now() < deadline) {
      const RouteResult r = router.submit(task);
      if (r.status == RouterStatus::kRouted ||
          r.status == RouterStatus::kFailedOver) {
        ASSERT_TRUE(r.response.certified);
        EXPECT_EQ(r.response.value, base.report.value);
        EXPECT_EQ(r.response.value, task.expected());
        if (!r.response.from_cache) {
          EXPECT_TRUE(
              traces_equal(r.response.report.trace, base.report.final_report.trace))
              << "sharded pivot trace diverged from the unsharded baseline";
        }
        answered = true;
      }
    }
    EXPECT_TRUE(answered) << "round " << round << " never answered";
    ASSERT_TRUE(router.wait_all_serving(std::chrono::seconds(20)));
  }
}

}  // namespace
}  // namespace pfact::serve
