// Liveness coverage for the serve-layer counter taxonomy: every counter the
// fork/socket paths bump is exercised through a real (small) scenario and
// asserted via ScopedCounters deltas — the observed leg of the PL017
// counter-dead lint rule, mirroring tests/obs/test_counter_coverage.cpp for
// the in-process counters. Rides the `serve` ctest label (real forks, real
// signals), so sanitizer lanes skip it like the rest of tests/serve.
//
// Failure-shaped counters (crashes, watchdog kills, fork failures) are
// asserted two ways: a clean run must leave them at zero (no spurious
// accounting), and the deliberately-killed runs must move exactly the ones
// that correspond to how the worker died.

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <thread>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "obs/counters.h"
#include "robustness/checkpoint.h"
#include "robustness/escalation.h"
#include "robustness/resilient_run.h"
#include "robustness/retry.h"
#include "serve/client.h"
#include "serve/frontend.h"
#include "serve/queue.h"
#include "serve/result_cache.h"
#include "serve/supervisor.h"
#include "serve/warm_pool.h"
#include "serve/worker_pool.h"

namespace pfact::serve {
namespace {

using obs::Counter;
using obs::CounterDelta;
using obs::Histogram;
using obs::ScopedCounters;
using robustness::Algorithm;
using robustness::Diagnostic;
using robustness::ReductionTask;

constexpr bool kObsOn = PFACT_OBS_ENABLED != 0;

ReductionTask gem_xor_task() {
  ReductionTask t;
  t.algorithm = Algorithm::kGem;
  t.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, false}};
  return t;
}

TaskRequest gem_request() {
  TaskRequest req;
  req.task = gem_xor_task();
  return req;
}

// A distinct-per-id task family, so cache hits cannot mask a fresh run.
ReductionTask chain_task(int id) {
  ReductionTask t;
  t.algorithm = Algorithm::kGep;
  t.u = 1 + id % 2;
  t.w = 1;
  t.depth = 2 + static_cast<std::size_t>(id % 7);
  return t;
}

TEST(ServeCounters, CleanWarmJobCountsSpawnsAndJobsButNoFailures) {
  ScopedCounters sc;
  WarmPoolOptions o;
  o.workers = 1;
  WarmPool pool(o);
  const WorkerRun run = pool.run_task(gem_request(), nullptr);
  ASSERT_EQ(run.exit, WorkerExit::kCompleted) << run.detail;
  const CounterDelta d = sc.delta();
  if (!kObsOn) {
    EXPECT_EQ(d[Counter::kWorkerSpawns], 0u);
    return;
  }
  EXPECT_GE(d[Counter::kWorkerSpawns], 1u);
  EXPECT_GE(d[Counter::kServeWarmJobs], 1u);
  // A clean run must not manufacture failure accounting.
  EXPECT_EQ(d[Counter::kWorkerCrashes], 0u);
  EXPECT_EQ(d[Counter::kWorkerWatchdogKills], 0u);
  EXPECT_EQ(d[Counter::kServeForkFailures], 0u);
}

TEST(ServeCounters, KilledWedgedAndRecycledWorkersMoveTheirCounters) {
  ScopedCounters sc;
  WarmPoolOptions o;
  o.workers = 1;
  o.recycle_after = 2;
  WarmPool pool(o);

  TaskRequest killed = gem_request();
  killed.kill.mode = KillPlan::Mode::kSigkill;
  EXPECT_EQ(pool.run_task(killed, nullptr).exit, WorkerExit::kSignalled);

  TaskRequest wedged = gem_request();
  wedged.kill.mode = KillPlan::Mode::kSpin;
  EXPECT_EQ(
      pool.run_task(wedged, nullptr, std::chrono::milliseconds(200)).exit,
      WorkerExit::kWatchdog);

  // Two clean jobs hit the recycle_after=2 quota: a planned retirement.
  EXPECT_EQ(pool.run_task(gem_request(), nullptr).exit,
            WorkerExit::kCompleted);
  EXPECT_EQ(pool.run_task(gem_request(), nullptr).exit,
            WorkerExit::kCompleted);

  const CounterDelta d = sc.delta();
  if (!kObsOn) return;
  EXPECT_GE(d[Counter::kWorkerCrashes], 2u);  // SIGKILL + watchdog SIGKILL
  EXPECT_GE(d[Counter::kWorkerWatchdogKills], 1u);
  EXPECT_GE(d[Counter::kServeWorkerRecycles], 1u);
  EXPECT_EQ(d[Counter::kServeForkFailures], 0u);
}

TEST(ServeCounters, SupervisedResumeHandoffIsCounted) {
  WorkerPool pool;
  SupervisorOptions opt;
  opt.retry.max_attempts = 3;
  opt.retry.base_delay = std::chrono::milliseconds(1);
  opt.checkpoint_every = 2;
  opt.kill_for_attempt = [](std::size_t attempt) {
    KillPlan kill;
    if (attempt == 1) {
      kill.mode = KillPlan::Mode::kSigkill;
      kill.after_saves = 1;  // die with a resumable snapshot on file
    }
    return kill;
  };
  ScopedCounters sc;
  const SupervisedReport rep = supervised_run(pool, gem_xor_task(), opt);
  ASSERT_TRUE(rep.certified) << rep.to_string();
  EXPECT_EQ(rep.resume_handoffs, 1u);
  const CounterDelta d = sc.delta();
  if (!kObsOn) return;
  EXPECT_GE(d[Counter::kWorkerResumeHandoffs], 1u);
  EXPECT_GE(d[Counter::kWorkerCrashes], 1u);
}

TEST(ServeCounters, ServiceSubmitShedAndQueueDepthAreCounted) {
  ScopedCounters sc;
  ServiceOptions so;
  so.dispatchers = 1;
  so.queue_depth = 1;
  so.pool.workers = 1;
  so.supervisor.retry.max_attempts = 1;
  ReductionService service(so);

  // Wedge the only dispatcher, fill the single queue slot, overflow it.
  JobOptions wedge;
  wedge.kill_for_attempt = [](std::size_t attempt) {
    KillPlan kill;
    if (attempt == 1) kill.mode = KillPlan::Mode::kSpin;
    return kill;
  };
  wedge.watchdog = std::chrono::milliseconds(300);
  auto wedged = service.submit(gem_xor_task(), wedge);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto filler = service.submit(chain_task(2));
  auto extra = service.submit(chain_task(3));

  EXPECT_EQ(extra->wait().admission, Admission::kShedQueueFull);
  EXPECT_TRUE(filler->wait().report.certified);
  wedged->wait();

  const CounterDelta d = sc.delta();
  if (!kObsOn) return;
  EXPECT_GE(d[Counter::kServeJobsSubmitted], 3u);
  EXPECT_GE(d[Counter::kServeJobsShed], 1u);
  EXPECT_GT(d.histogram_total(Histogram::kQueueDepth), 0u);
}

TEST(ServeCounters, CacheMissFillHitEvictAndCorruptAreCounted) {
  using robustness::Substrate;
  // A genuine PFCK blob, as the cache vets every entry's riding checkpoint.
  robustness::CheckpointStore store;
  robustness::ResilientOptions ro;
  ro.store = &store;
  ro.checkpoint_every = 2;
  robustness::resilient_run(gem_xor_task(), ro);
  ASSERT_FALSE(store.empty());
  CacheEntry entry;
  entry.value = true;
  entry.final_checkpoint = *store.latest();

  ScopedCounters sc;
  ResultCache cache(1);
  const std::string key_a =
      ResultCache::key_for(chain_task(4), Substrate::kDouble);
  const std::string key_b =
      ResultCache::key_for(chain_task(5), Substrate::kDouble);
  CacheEntry out;
  EXPECT_EQ(cache.lookup(key_a, out), CacheProbe::kMiss);
  cache.insert(key_a, entry);                             // fill
  EXPECT_EQ(cache.lookup(key_a, out), CacheProbe::kHit);  // hit
  cache.insert(key_b, entry);  // fill at capacity 1: evicts key_a
  EXPECT_EQ(cache.lookup(key_a, out), CacheProbe::kMiss);
  ASSERT_TRUE(cache.corrupt_entry_for_testing(key_b));
  EXPECT_EQ(cache.lookup(key_b, out), CacheProbe::kCorruptEntry);

  const CounterDelta d = sc.delta();
  if (!kObsOn) return;
  EXPECT_GE(d[Counter::kServeCacheMisses], 2u);
  EXPECT_GE(d[Counter::kServeCacheFills], 2u);
  EXPECT_GE(d[Counter::kServeCacheHits], 1u);
  EXPECT_GE(d[Counter::kServeCacheEvictions], 1u);
  EXPECT_GE(d[Counter::kServeCacheCorrupt], 1u);
}

TEST(ServeCounters, FrontendTrafficCountsConnsBytesAndClientRetries) {
  ::signal(SIGPIPE, SIG_IGN);
  ScopedCounters sc;
  ServiceOptions so;
  so.dispatchers = 1;
  so.pool.workers = 1;
  ReductionService service(so);
  FrontendOptions fo;
  fo.unix_path = "/tmp/pfact-counter-cov-" + std::to_string(::getpid()) +
                 ".sock";
  Frontend frontend(service, fo);
  ASSERT_TRUE(frontend.running());

  ClientOptions co;
  co.unix_path = frontend.unix_path();
  co.retry.max_attempts = 3;
  co.retry.base_delay = std::chrono::milliseconds(1);
  co.fault.fault = NetFault::kTornFrame;
  co.fault.seed = 7;
  co.fault.on_attempt = 1;  // sabotage attempt 1, forcing one client retry
  Client client(co);
  const ClientResult r = client.submit(chain_task(6));
  ASSERT_TRUE(r.ok) << frontend_status_name(r.status);
  EXPECT_EQ(r.attempts, 2u);

  const CounterDelta d = sc.delta();
  if (!kObsOn) return;
  EXPECT_GE(d[Counter::kFrontendConnsAccepted], 2u);
  EXPECT_GT(d[Counter::kFrontendBytesRead], 0u);
  EXPECT_GT(d[Counter::kFrontendBytesWritten], 0u);
  EXPECT_GE(d[Counter::kClientRetries], 1u);
}

}  // namespace
}  // namespace pfact::serve
