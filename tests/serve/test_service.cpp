// ReductionService tests: admission control, graceful degradation, and the
// verified result cache, driven end-to-end — real dispatcher threads, real
// warm workers, real watchdog kills wedging the dispatchers where a test
// needs the queue to back up.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "robustness/retry.h"
#include "serve/queue.h"

namespace pfact::serve {
namespace {

using robustness::Algorithm;
using robustness::Diagnostic;
using robustness::FailureKind;
using robustness::ReductionTask;

ReductionTask gem_xor_task() {
  ReductionTask t;
  t.algorithm = Algorithm::kGem;
  t.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, false}};
  return t;
}

ReductionTask majority_task() {
  ReductionTask t;
  t.algorithm = Algorithm::kGem;
  t.instance =
      circuit::CvpInstance{circuit::majority3_circuit(), {true, false, true}};
  return t;
}

// A job whose first (and, with max_attempts=1, only) worker spins until the
// given watchdog fires: holds a dispatcher for the watchdog duration, then
// resolves as a classified terminal failure. The tests use it to wedge
// dispatchers deterministically.
JobOptions wedge_job(std::chrono::milliseconds watchdog) {
  JobOptions job;
  job.kill_for_attempt = [](std::size_t attempt) {
    KillPlan kill;
    if (attempt == 1) kill.mode = KillPlan::Mode::kSpin;
    return kill;
  };
  job.watchdog = watchdog;
  return job;
}

TEST(ReductionService, AdmissionTaxonomyIsNamedAndMapped) {
  EXPECT_EQ(all_admissions().size(), 4u);
  for (Admission a : all_admissions()) {
    EXPECT_STRNE(admission_name(a), "?");
  }
  EXPECT_EQ(diagnose_admission(Admission::kAccepted), Diagnostic::kOk);
  EXPECT_EQ(diagnose_admission(Admission::kShedQueueFull),
            Diagnostic::kOverloaded);
  EXPECT_EQ(diagnose_admission(Admission::kShedDeadline),
            Diagnostic::kDeadlineExceeded);
  EXPECT_EQ(diagnose_admission(Admission::kShedShutdown),
            Diagnostic::kCancelled);
  // Every shed class is transient: the work was refused, never refuted, so
  // a client backoff-and-resubmit loop is always sound.
  for (Admission a : all_admissions()) {
    if (a == Admission::kAccepted) continue;
    EXPECT_EQ(robustness::classify_diagnostic(diagnose_admission(a)),
              FailureKind::kTransient)
        << admission_name(a);
  }
}

TEST(ReductionService, CertifiesThroughTheWarmPool) {
  ServiceOptions so;
  so.dispatchers = 1;
  so.pool.workers = 1;
  ReductionService service(so);
  const ReductionTask task = gem_xor_task();
  const ServiceResponse resp = service.run(task);
  EXPECT_EQ(resp.admission, Admission::kAccepted);
  EXPECT_FALSE(resp.from_cache);
  ASSERT_TRUE(resp.report.certified) << resp.report.to_string();
  EXPECT_EQ(resp.report.value, task.expected());
  EXPECT_EQ(service.stats().accepted, 1u);
}

TEST(ReductionService, RepeatTrafficIsServedFromTheVerifiedCache) {
  ServiceOptions so;
  so.dispatchers = 1;
  so.pool.workers = 1;
  ReductionService service(so);
  const ReductionTask task = majority_task();

  const ServiceResponse first = service.run(task);
  ASSERT_TRUE(first.report.certified) << first.report.to_string();
  EXPECT_FALSE(first.from_cache);
  const std::uint64_t warm_jobs_after_first = service.pool().stats().jobs;
  EXPECT_EQ(service.cache().size(), 1u);  // certified answer was filed

  const ServiceResponse second = service.run(task);
  EXPECT_TRUE(second.from_cache);
  ASSERT_TRUE(second.report.certified);
  // Bit-identical to the freshly factored answer, and no worker touched.
  EXPECT_EQ(second.report.value, first.report.value);
  EXPECT_EQ(second.report.certified_by, first.report.certified_by);
  EXPECT_EQ(service.pool().stats().jobs, warm_jobs_after_first);
  EXPECT_EQ(service.stats().served_from_cache, 1u);
  EXPECT_EQ(service.cache().stats().hits, 1u);
}

TEST(ReductionService, OverBoundSubmitIsShedAsQueueFull) {
  ServiceOptions so;
  so.dispatchers = 1;
  so.queue_depth = 1;
  so.pool.workers = 1;
  so.supervisor.retry.max_attempts = 1;  // the wedge resolves after one kill
  ReductionService service(so);

  auto wedge = service.submit(gem_xor_task(),
                              wedge_job(std::chrono::milliseconds(300)));
  // Let the dispatcher pick the wedge up so the queue itself is empty...
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // ...then fill the single queue slot and overflow it.
  auto filler = service.submit(majority_task());
  auto extra = service.submit(majority_task());

  const ServiceResponse& shed = extra->wait();
  EXPECT_EQ(shed.admission, Admission::kShedQueueFull);
  EXPECT_FALSE(shed.report.certified);
  EXPECT_EQ(shed.report.final_report.diagnostic, Diagnostic::kOverloaded);
  EXPECT_EQ(shed.report.outcome, FailureKind::kTransient);

  // The admitted job still certifies once the wedge clears.
  const ServiceResponse& served = filler->wait();
  EXPECT_EQ(served.admission, Admission::kAccepted);
  ASSERT_TRUE(served.report.certified) << served.report.to_string();
  EXPECT_EQ(served.report.value, majority_task().expected());

  // The wedge did its job (held the dispatcher through the watchdog
  // window), then the supervisor escalated past the killed rung and still
  // certified it — degradation shed the overflow, not the admitted work.
  const ServiceResponse& wedged = wedge->wait();
  EXPECT_EQ(wedged.admission, Admission::kAccepted);
  EXPECT_TRUE(wedged.report.certified) << wedged.report.to_string();
  EXPECT_GE(wedged.report.watchdog_kills, 1u);

  const ReductionService::Stats s = service.stats();
  EXPECT_EQ(s.shed_queue_full, 1u);
  EXPECT_EQ(s.submitted, 3u);
  EXPECT_EQ(s.accepted, 2u);
}

TEST(ReductionService, ExpiredDeadlineIsShedBeforeDispatch) {
  ServiceOptions so;
  so.dispatchers = 1;
  so.pool.workers = 1;
  so.supervisor.retry.max_attempts = 1;
  ReductionService service(so);

  auto wedge = service.submit(gem_xor_task(),
                              wedge_job(std::chrono::milliseconds(300)));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  JobOptions doomed;
  doomed.deadline = std::chrono::milliseconds(1);
  auto late = service.submit(majority_task(), doomed);

  const ServiceResponse& resp = late->wait();
  EXPECT_EQ(resp.admission, Admission::kShedDeadline);
  EXPECT_FALSE(resp.report.certified);
  EXPECT_EQ(resp.report.final_report.diagnostic,
            Diagnostic::kDeadlineExceeded);
  EXPECT_EQ(resp.report.outcome, FailureKind::kTransient);
  EXPECT_EQ(service.stats().shed_deadline, 1u);
  wedge->wait();  // bounded: the watchdog ends the wedge
}

TEST(ReductionService, ShutdownResolvesQueuedJobsAsShed) {
  std::shared_ptr<ReductionService::Pending> queued;
  {
    ServiceOptions so;
    so.dispatchers = 1;
    so.pool.workers = 1;
    so.supervisor.retry.max_attempts = 1;
    ReductionService service(so);
    auto wedge = service.submit(gem_xor_task(),
                                wedge_job(std::chrono::milliseconds(300)));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    queued = service.submit(majority_task());
    // Destruction: stop admission, drain the queue with classified
    // shutdown sheds, let the in-flight wedge finish, join dispatchers.
  }
  const ServiceResponse& resp = queued->wait();
  EXPECT_EQ(resp.admission, Admission::kShedShutdown);
  EXPECT_FALSE(resp.report.certified);
  EXPECT_EQ(resp.report.final_report.diagnostic, Diagnostic::kCancelled);
}

TEST(ReductionService, SubmitAfterShutdownBeganIsShed) {
  ServiceOptions so;
  so.dispatchers = 1;
  so.pool.workers = 1;
  ReductionService service(so);
  // A service cannot be submitted to after destruction, so exercise the
  // stopping_ path via the public seam closest to it: the dtor sheds what
  // is queued (previous test); here just sanity-check normal admission.
  const ServiceResponse resp = service.run(gem_xor_task());
  EXPECT_EQ(resp.admission, Admission::kAccepted);
}

TEST(ReductionService, ConcurrentClientsAllGetCorrectAnswers) {
  ServiceOptions so;
  so.dispatchers = 2;
  so.queue_depth = 64;  // roomy: this test is about correctness, not sheds
  so.pool.workers = 2;
  ReductionService service(so);

  const std::vector<ReductionTask> tasks = {gem_xor_task(), majority_task()};
  std::atomic<int> correct{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&service, &tasks, &correct, c] {
      for (int j = 0; j < 3; ++j) {
        const ReductionTask& task = tasks[(c + j) % tasks.size()];
        const ServiceResponse resp = service.run(task);
        if (resp.admission == Admission::kAccepted &&
            resp.report.certified &&
            resp.report.value == task.expected()) {
          correct.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(correct.load(), 12);
  const ReductionService::Stats s = service.stats();
  EXPECT_EQ(s.submitted, 12u);
  EXPECT_EQ(s.accepted, 12u);
  EXPECT_EQ(s.shed_queue_full + s.shed_deadline + s.shed_shutdown, 0u);
  // Two distinct tasks, twelve runs, two dispatchers: each task can be
  // factored fresh at most twice (two dispatchers racing the same miss),
  // so at least eight runs were cache hits.
  EXPECT_GE(s.served_from_cache, 8u);
  EXPECT_EQ(service.pool().live_workers(), 2u);
}

}  // namespace
}  // namespace pfact::serve
