// Cross-process crash/resume equivalence for the SPARSE backend (ctest
// label `serve`): the Backend::kSparse mirror of
// tests/serve/test_supervised_resume.cpp. The backend travels in the wire
// request, the worker factorizes over SparseMatrix storage, streams
// sparse-CSR checkpoint frames over its pipe, and a worker REALLY killed at
// every checkpoint boundary must be resumable by a fresh worker seeded with
// a sparse blob — landing on the bit-identical decode and event-for-event
// trace of the uninterrupted IN-PROCESS DENSE baseline, closing the loop:
// dense in-process == sparse in-process == sparse supervised-with-kills.

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "robustness/escalation.h"
#include "robustness/guarded_run.h"
#include "serve/result_cache.h"
#include "serve/supervisor.h"
#include "serve/worker_pool.h"

namespace pfact::serve {
namespace {

using robustness::Algorithm;
using robustness::Backend;
using robustness::Diagnostic;
using robustness::ReductionTask;
using robustness::RunReport;
using robustness::Substrate;

bool traces_equal(const factor::PivotTrace& a, const factor::PivotTrace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].column != b[i].column || a[i].pivot_pos != b[i].pivot_pos ||
        a[i].pivot_row != b[i].pivot_row || a[i].action != b[i].action) {
      return false;
    }
  }
  return true;
}

std::vector<ReductionTask> sparse_tasks() {
  std::vector<ReductionTask> tasks;
  ReductionTask gem;
  gem.algorithm = Algorithm::kGem;
  gem.backend = Backend::kSparse;
  gem.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, false}};
  tasks.push_back(gem);
  ReductionTask gems = gem;
  gems.algorithm = Algorithm::kGems;
  gems.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, true}};
  tasks.push_back(gems);
  // GQR exercises rotate_rows and the sparse-long-double blob tag.
  ReductionTask gqr;
  gqr.algorithm = Algorithm::kGqr;
  gqr.backend = Backend::kSparse;
  gqr.u = 1;
  gqr.w = -1;
  gqr.depth = 1;
  tasks.push_back(gqr);
  return tasks;
}

SupervisorOptions fast_retry_options() {
  SupervisorOptions opt;
  opt.retry.max_attempts = 3;
  opt.retry.base_delay = std::chrono::milliseconds(0);  // replay at speed
  opt.checkpoint_every = 2;
  return opt;
}

TEST(SupervisedSparse, EveryKillPointResumesToTheDenseBaselineDecode) {
  constexpr std::size_t kEvery = 2;
  WorkerPool pool;
  for (const ReductionTask& task : sparse_tasks()) {
    // The equivalence anchor is the DENSE in-process run: the supervised
    // sparse answer must match it bit for bit, not merely itself.
    ReductionTask dense = task;
    dense.backend = Backend::kDense;
    const RunReport baseline = run_on_substrate(dense, Substrate::kDouble);
    ASSERT_EQ(baseline.diagnostic, Diagnostic::kOk) << task.describe();

    SupervisorOptions probe = fast_retry_options();
    const SupervisedReport clean = supervised_run(pool, task, probe);
    ASSERT_TRUE(clean.certified) << task.describe() << "\n"
                                 << clean.to_string();
    ASSERT_EQ(clean.value, baseline.value) << task.describe();
    const std::size_t saves = clean.checkpoints_received;
    ASSERT_GT(saves, 0u) << task.describe();

    for (std::size_t j = 0; j <= saves; ++j) {
      SupervisorOptions opt = fast_retry_options();
      opt.kill_for_attempt = [j](std::size_t attempt) {
        KillPlan kill;
        if (attempt == 1) {
          kill.mode = (j % 2 == 0) ? KillPlan::Mode::kSigkill
                                   : KillPlan::Mode::kSigsegv;
          kill.after_saves = j;
        }
        return kill;
      };
      const SupervisedReport rep = supervised_run(pool, task, opt);
      ASSERT_TRUE(rep.certified)
          << task.describe() << " j=" << j << "\n" << rep.to_string();
      EXPECT_EQ(rep.value, baseline.value) << task.describe() << " j=" << j;
      EXPECT_EQ(rep.certified_by, Substrate::kDouble);
      // Bit-equal to the dense world: the successor replayed the sparse
      // suffix arithmetic on a sparse-CSR snapshot handed over the pipe,
      // and none of that is allowed to show in the answer.
      EXPECT_EQ(rep.final_report.decoded_entry, baseline.decoded_entry)
          << task.describe() << " j=" << j;
      EXPECT_TRUE(traces_equal(rep.final_report.trace, baseline.trace))
          << task.describe() << " j=" << j;
      ASSERT_EQ(rep.attempts.size(), 2u) << task.describe() << " j=" << j;
      EXPECT_EQ(rep.attempts[0].diagnostic, Diagnostic::kWorkerFailure);
      EXPECT_EQ(rep.workers_spawned, 2u);
      EXPECT_EQ(rep.workers_crashed, 1u);
      if (j == 0) {
        EXPECT_EQ(rep.resume_handoffs, 0u) << task.describe();
        EXPECT_EQ(rep.final_report.steps_used, baseline.steps_used);
      } else {
        EXPECT_EQ(rep.resume_handoffs, 1u) << task.describe() << " j=" << j;
        EXPECT_TRUE(rep.attempts[1].resumed);
        EXPECT_EQ(rep.final_report.steps_used,
                  baseline.steps_used - j * kEvery)
            << task.describe() << " j=" << j;
      }
    }
  }
}

// The cache key must keep the backends apart: a certified entry carries the
// run's final checkpoint blob, and a dense blob seeded into a sparse resume
// (or vice versa) would be refused as corrupt — so the two runs must not
// share an entry even though their answers agree.
TEST(SupervisedSparse, CacheKeysSeparateBackends) {
  ReductionTask task;
  task.algorithm = Algorithm::kGem;
  task.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, true}};
  task.backend = Backend::kDense;
  const std::string dense_key = ResultCache::key_for(task, Substrate::kDouble);
  task.backend = Backend::kSparse;
  const std::string sparse_key =
      ResultCache::key_for(task, Substrate::kDouble);
  EXPECT_NE(dense_key, sparse_key);
  EXPECT_NE(sparse_key.find("sparse"), std::string::npos);
}

}  // namespace
}  // namespace pfact::serve
