// EINTR regression suite (PR 10 satellite): the serve layer's poll loops
// must treat an interrupted syscall as "ask again", never as a dead peer.
//
// The sharded router multiplies SIGCHLD traffic — every shard death,
// restart, and warm-pool recycle delivers one to the parent — and a signal
// landing mid-poll() or mid-connect() makes the call fail with EINTR. A
// loop that maps that errno onto kConnReset invents outages out of thin
// air. These tests run real signal storms (handlers installed WITHOUT
// SA_RESTART, so nothing is transparently restarted for us) against
// read_frame, Client::submit, and a recycling warm pool, and assert that
// not one conversation is misclassified: every submit is accepted on its
// FIRST attempt, with zero backoffs and zero conn-reset endings.

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "obs/counters.h"
#include "robustness/checkpoint.h"
#include "robustness/escalation.h"
#include "serve/client.h"
#include "serve/frontend.h"
#include "serve/queue.h"
#include "serve/wire.h"

namespace pfact::serve {
namespace {

using robustness::Algorithm;
using robustness::ReductionTask;

std::atomic<std::uint64_t> g_signals{0};

// Async-signal-safe: a lock-free relaxed increment and nothing else.
void count_signal(int) { g_signals.fetch_add(1, std::memory_order_relaxed); }

// Installs a SIGUSR1 handler with SA_RESTART deliberately CLEARED, so every
// delivery makes the interrupted syscall return EINTR instead of resuming
// silently — the harshest honest version of SIGCHLD-heavy supervision
// traffic. Restores the previous disposition on destruction.
class StormDisposition {
 public:
  StormDisposition() {
    struct sigaction sa {};
    sa.sa_handler = count_signal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: EINTR surfaces at every call site
    sigaction(SIGUSR1, &sa, &old_);
  }
  ~StormDisposition() { sigaction(SIGUSR1, &old_, nullptr); }

 private:
  struct sigaction old_ {};
};

// Fires SIGUSR1 at a target thread (and, optionally, the whole process so
// the frontend's own poll loop catches strays too) every ~200us until
// stopped.
class SignalStorm {
 public:
  explicit SignalStorm(pthread_t target, bool process_wide = false)
      : target_(target), process_wide_(process_wide), thread_([this] {
          while (!stop_.load(std::memory_order_relaxed)) {
            pthread_kill(target_, SIGUSR1);
            if (process_wide_) ::kill(::getpid(), SIGUSR1);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        }) {}
  ~SignalStorm() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  pthread_t target_;
  bool process_wide_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

void put_u32le(std::string& s, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64le(std::string& s, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

TEST(EintrRegression, ReadFrameReassemblesThroughASignalStorm) {
  StormDisposition disposition;
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

  const std::string payload = "eintr-regression-payload";
  std::string frame;
  put_u32le(frame, kFrameMagic);
  frame.push_back(static_cast<char>(FrameType::kResult));
  put_u64le(frame, payload.size());
  put_u32le(frame, robustness::crc32(payload.data(), payload.size()));
  frame += payload;

  // Dribble the frame one byte per millisecond: the reader's poll loop must
  // cross dozens of EINTR-interrupted poll() calls AND partial reads, and
  // still reassemble the exact frame.
  std::thread writer([&] {
    for (const char b : frame) {
      ASSERT_EQ(::write(sv[1], &b, 1), 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ::close(sv[1]);
  });

  const std::uint64_t before = g_signals.load();
  {
    SignalStorm storm(pthread_self());
    FrameType type = FrameType::kRequest;
    std::string got;
    const WireStatus ws = read_frame(
        sv[0], type, got,
        std::chrono::steady_clock::now() + std::chrono::seconds(30));
    EXPECT_EQ(ws, WireStatus::kOk) << wire_status_name(ws);
    EXPECT_EQ(type, FrameType::kResult);
    EXPECT_EQ(got, payload);
  }
  writer.join();
  ::close(sv[0]);
  EXPECT_GT(g_signals.load(), before) << "the storm never actually landed";
}

TEST(EintrRegression, ClientSubmitIsNotMisclassifiedUnderStorm) {
  StormDisposition disposition;
  ServiceOptions so;
  so.dispatchers = 1;
  so.pool.workers = 1;
  ReductionService service(so);
  FrontendOptions fo;
  fo.unix_path =
      "/tmp/pfact_test_eintr_" + std::to_string(::getpid()) + ".sock";
  Frontend frontend(service, fo);
  ASSERT_TRUE(frontend.running());

  ReductionTask task;
  task.algorithm = Algorithm::kGem;
  task.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, false}};

  ClientOptions co;
  co.unix_path = fo.unix_path;
  co.retry.max_attempts = 3;
  co.sleeper = [](std::chrono::milliseconds) {};

  const std::uint64_t before = g_signals.load();
  {
    // Storm both the submitting thread and the whole process, so the
    // frontend's poll loop and the dispatcher threads take strays too.
    SignalStorm storm(pthread_self(), /*process_wide=*/true);
    for (int i = 0; i < 8; ++i) {
      Client client(co);
      const ClientResult res = client.submit(task);
      ASSERT_TRUE(res.ok) << frontend_status_name(res.status);
      EXPECT_EQ(res.status, FrontendStatus::kAccepted);
      // The regression being pinned: a signal mid-poll/mid-connect must not
      // read as a vanished peer. First attempt, no backoffs, no retries.
      EXPECT_EQ(res.attempts, 1u);
      EXPECT_TRUE(res.backoffs.empty());
      EXPECT_EQ(res.response.value, task.expected());
    }
  }
  EXPECT_GT(g_signals.load(), before) << "the storm never actually landed";
  // The frontend's own ledger agrees: no conversation ended kConnReset.
  EXPECT_EQ(frontend.stats().status(FrontendStatus::kConnReset), 0u);
  EXPECT_EQ(frontend.stats().status(FrontendStatus::kAccepted), 8u);
}

TEST(EintrRegression, RealSigchldTrafficFromRecyclingPoolIsHarmless) {
  // No synthetic storm here: recycle_after=1 forks a fresh worker for every
  // job, so each submit delivers genuine SIGCHLDs to this process while
  // later submits are mid-conversation. A handler (no SA_RESTART) makes
  // them visible as EINTR rather than silently restarted.
  struct sigaction sa {}, old {};
  sa.sa_handler = count_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGCHLD, &sa, &old);

  {
    ServiceOptions so;
    so.dispatchers = 1;
    so.pool.workers = 1;
    so.pool.recycle_after = 1;
    ReductionService service(so);
    FrontendOptions fo;
    fo.unix_path =
        "/tmp/pfact_test_eintr_chld_" + std::to_string(::getpid()) + ".sock";
    Frontend frontend(service, fo);
    ASSERT_TRUE(frontend.running());

    ClientOptions co;
    co.unix_path = fo.unix_path;
    co.sleeper = [](std::chrono::milliseconds) {};
    for (unsigned m = 0; m < 4; ++m) {
      ReductionTask task;
      task.algorithm = Algorithm::kGem;
      task.instance = circuit::CvpInstance{circuit::xor_circuit(),
                                           {(m & 1) != 0, (m & 2) != 0}};
      Client client(co);
      const ClientResult res = client.submit(task);
      ASSERT_TRUE(res.ok) << frontend_status_name(res.status);
      EXPECT_EQ(res.attempts, 1u);
      EXPECT_EQ(res.response.value, task.expected());
    }
    EXPECT_EQ(frontend.stats().status(FrontendStatus::kConnReset), 0u);
  }
  sigaction(SIGCHLD, &old, nullptr);
}

}  // namespace
}  // namespace pfact::serve
