// WarmPool lifecycle tests: pre-forked workers that live across jobs. The
// contracts under test are the ones that distinguish a warm pool from the
// cold one-fork-per-attempt WorkerPool: slots serve many jobs without
// reforking, planned retirement (quota or sandbox taint) replaces a slot
// through a clean EOF, and every real death — SIGKILL, genuine SIGSEGV,
// watchdog — is classified with the shared taxonomy AND auto-respawned.

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "robustness/checkpoint.h"
#include "robustness/escalation.h"
#include "robustness/retry.h"
#include "serve/supervisor.h"
#include "serve/warm_pool.h"

namespace pfact::serve {
namespace {

using robustness::Algorithm;
using robustness::CheckpointStore;
using robustness::Diagnostic;
using robustness::ReductionTask;

TaskRequest gem_request() {
  TaskRequest req;
  req.task.algorithm = Algorithm::kGem;
  req.task.instance =
      circuit::CvpInstance{circuit::xor_circuit(), {true, false}};
  return req;
}

TEST(WarmPool, PreforksItsSlotsAndServesAJob) {
  WarmPoolOptions o;
  o.workers = 2;
  WarmPool pool(o);
  EXPECT_EQ(pool.live_workers(), 2u);  // forked before any job arrived
  const TaskRequest req = gem_request();
  const WorkerRun run = pool.run_task(req, nullptr);
  ASSERT_EQ(run.exit, WorkerExit::kCompleted) << run.detail;
  ASSERT_TRUE(run.has_result);
  EXPECT_EQ(run.result.diagnostic, Diagnostic::kOk) << run.result.detail;
  EXPECT_EQ(run.result.value, req.task.expected());
}

// The defining property: many jobs, zero additional forks. A cold pool
// would have spawned once per job.
TEST(WarmPool, WarmSlotsServeManyJobsWithoutReforking) {
  WarmPoolOptions o;
  o.workers = 2;
  o.recycle_after = 0;  // never retire on quota
  WarmPool pool(o);
  const TaskRequest req = gem_request();
  for (int i = 0; i < 6; ++i) {
    const WorkerRun run = pool.run_task(req, nullptr);
    ASSERT_EQ(run.exit, WorkerExit::kCompleted) << run.detail;
    ASSERT_TRUE(run.has_result);
    EXPECT_EQ(run.result.value, req.task.expected());
  }
  const WarmPool::Stats s = pool.stats();
  EXPECT_EQ(s.spawned, 2u);  // the pre-forked pair served everything
  EXPECT_EQ(s.jobs, 6u);
  EXPECT_EQ(s.completed, 6u);
  EXPECT_EQ(s.crashed, 0u);
  EXPECT_EQ(pool.live_workers(), 2u);
}

TEST(WarmPool, SigkilledWarmWorkerIsClassifiedAndRespawned) {
  WarmPoolOptions o;
  o.workers = 1;
  WarmPool pool(o);
  TaskRequest req = gem_request();
  req.kill.mode = KillPlan::Mode::kSigkill;
  const WorkerRun run = pool.run_task(req, nullptr);
  EXPECT_EQ(run.exit, WorkerExit::kSignalled) << run.detail;
  EXPECT_EQ(run.term_signal, SIGKILL);
  EXPECT_FALSE(run.has_result);
  EXPECT_EQ(pool.stats().crashed, 1u);
  // Auto-respawn: the slot is already staffed again...
  EXPECT_EQ(pool.live_workers(), 1u);
  // ...and the replacement actually works.
  const TaskRequest clean = gem_request();
  const WorkerRun again = pool.run_task(clean, nullptr);
  ASSERT_EQ(again.exit, WorkerExit::kCompleted) << again.detail;
  EXPECT_EQ(again.result.value, clean.task.expected());
  EXPECT_EQ(pool.stats().spawned, 2u);
}

TEST(WarmPool, SegfaultingWarmWorkerIsContained) {
  WarmPoolOptions o;
  o.workers = 1;
  WarmPool pool(o);
  TaskRequest req = gem_request();
  req.kill.mode = KillPlan::Mode::kSigsegv;
  const WorkerRun run = pool.run_task(req, nullptr);
  EXPECT_EQ(run.exit, WorkerExit::kSignalled) << run.detail;
  EXPECT_EQ(run.term_signal, SIGSEGV);
  EXPECT_EQ(pool.live_workers(), 1u);
  // The whole point: the SIGSEGV happened, and THIS process is still here.
}

TEST(WarmPool, WatchdogKillsAWedgedWarmWorker) {
  WarmPoolOptions o;
  o.workers = 1;
  WarmPool pool(o);
  TaskRequest req = gem_request();
  req.kill.mode = KillPlan::Mode::kSpin;  // never returns on its own
  const auto t0 = std::chrono::steady_clock::now();
  const WorkerRun run =
      pool.run_task(req, nullptr, std::chrono::milliseconds(200));
  EXPECT_EQ(run.exit, WorkerExit::kWatchdog) << run.detail;
  EXPECT_EQ(run.term_signal, SIGKILL);
  EXPECT_EQ(pool.stats().watchdog_kills, 1u);
  EXPECT_EQ(pool.live_workers(), 1u);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(30));
}

// Planned retirement: after `recycle_after` jobs the slot is retired via a
// clean request-pipe EOF (exit 0, not a kill) and replaced. Nothing counts
// as a crash.
TEST(WarmPool, QuotaRecyclingRetiresAndReplacesSlots) {
  WarmPoolOptions o;
  o.workers = 1;
  o.recycle_after = 2;
  WarmPool pool(o);
  for (int i = 0; i < 4; ++i) {
    const WorkerRun run = pool.run_task(gem_request(), nullptr);
    ASSERT_EQ(run.exit, WorkerExit::kCompleted) << run.detail;
  }
  const WarmPool::Stats s = pool.stats();
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.crashed, 0u);
  EXPECT_EQ(s.recycles, 2u);  // after jobs 2 and 4
  EXPECT_EQ(s.spawned, 3u);   // the original + two replacements
  EXPECT_EQ(pool.live_workers(), 1u);
}

// A job that carried an rlimit sandbox retires its slot even when it
// completes cleanly: RLIMIT_CPU is cumulative per process and hard limits
// cannot be raised, so the budget would silently poison every later job.
TEST(WarmPool, SandboxedJobRetiresItsSlot) {
  WarmPoolOptions o;
  o.workers = 1;
  o.recycle_after = 0;
  WarmPool pool(o);
  TaskRequest req = gem_request();
  req.rlimits.cpu_seconds = 5;  // plenty to finish; still taints the slot
  const WorkerRun run = pool.run_task(req, nullptr);
  ASSERT_EQ(run.exit, WorkerExit::kCompleted) << run.detail;
  const WarmPool::Stats s = pool.stats();
  EXPECT_EQ(s.crashed, 0u);
  EXPECT_EQ(s.recycles, 1u);
  EXPECT_EQ(s.spawned, 2u);
  EXPECT_EQ(pool.live_workers(), 1u);
}

TEST(WarmPool, CheckpointFramesAreVerifiedAndFiled) {
  WarmPoolOptions o;
  o.workers = 1;
  WarmPool pool(o);
  TaskRequest req = gem_request();
  req.checkpoint_every = 2;
  req.kill.mode = KillPlan::Mode::kSigkill;
  req.kill.after_saves = 2;  // die right after shipping the second save
  CheckpointStore store;
  const WorkerRun run = pool.run_task(req, &store);
  EXPECT_EQ(run.exit, WorkerExit::kSignalled) << run.detail;
  EXPECT_EQ(run.checkpoints_received, 2u);
  EXPECT_EQ(run.checkpoints_rejected, 0u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.latest_step(), 4u);
  EXPECT_EQ(pool.live_workers(), 1u);
}

// The supervisor's retry/resume loop runs unchanged over the warm pool: a
// worker SIGKILLed after its first save is classified, its successor is
// seeded from the streamed blob, and the task still certifies.
TEST(WarmPool, SupervisedRunResumesAcrossWarmWorkerDeaths) {
  WarmPoolOptions o;
  o.workers = 2;
  WarmPool pool(o);
  ReductionTask task;
  task.algorithm = Algorithm::kGem;
  task.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, false}};
  SupervisorOptions so;
  so.retry.max_attempts = 3;
  so.retry.base_delay = std::chrono::milliseconds{1};
  so.checkpoint_every = 2;
  so.kill_for_attempt = [](std::size_t attempt) {
    KillPlan kill;
    if (attempt == 1) {
      kill.mode = KillPlan::Mode::kSigkill;
      kill.after_saves = 1;
    }
    return kill;
  };
  const SupervisedReport rep = supervised_run(pool, task, so);
  ASSERT_TRUE(rep.certified) << rep.to_string();
  EXPECT_EQ(rep.value, task.expected());
  ASSERT_GE(rep.attempts.size(), 2u);
  EXPECT_EQ(rep.attempts.front().diagnostic, Diagnostic::kWorkerFailure);
  EXPECT_GE(rep.resume_handoffs, 1u);
  EXPECT_EQ(pool.live_workers(), 2u);
}

// Two pools in one process must not entangle: pool B's children are forked
// while pool A's request pipes are open, and an inherited duplicate of A's
// write ends would keep A's workers from ever seeing their retirement EOF —
// destroying A would then block forever in reap. The process-wide fd
// registry closes every other pool's parent-side fds inside each fresh
// child, so teardown stays prompt no matter the construction order.
TEST(WarmPool, CoexistingPoolsTearDownWithoutEntanglement) {
  const auto t0 = std::chrono::steady_clock::now();
  auto first = std::make_unique<WarmPool>(WarmPoolOptions{});
  WarmPool second{WarmPoolOptions{}};  // children inherit first's pipes
  const TaskRequest req = gem_request();
  ASSERT_EQ(first->run_task(req, nullptr).exit, WorkerExit::kCompleted);
  ASSERT_EQ(second.run_task(req, nullptr).exit, WorkerExit::kCompleted);
  first.reset();  // would hang here if second's children pinned the pipes
  const WorkerRun after = second.run_task(req, nullptr);
  ASSERT_EQ(after.exit, WorkerExit::kCompleted) << after.detail;
  EXPECT_EQ(after.result.value, req.task.expected());
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(30));
}

// Many client threads share the slots: more clients than workers, every job
// completes correctly, and slot leasing never loses or duplicates a worker.
TEST(WarmPool, ConcurrentClientsShareTheSlots) {
  WarmPoolOptions o;
  o.workers = 2;
  o.recycle_after = 3;  // recycling happens *under* concurrency too
  WarmPool pool(o);
  std::atomic<int> correct{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&pool, &correct] {
      const TaskRequest req = gem_request();
      const WorkerRun run = pool.run_task(req, nullptr);
      if (run.exit == WorkerExit::kCompleted && run.has_result &&
          run.result.value == req.task.expected()) {
        correct.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(correct.load(), 8);
  EXPECT_EQ(pool.stats().jobs, 8u);
  EXPECT_EQ(pool.stats().completed, 8u);
  EXPECT_EQ(pool.live_workers(), 2u);
}

}  // namespace
}  // namespace pfact::serve
