// Socket front-end tests: round-trip correctness over Unix and TCP sockets,
// bit-equal equivalence to the in-process baseline, and the rejection
// matrix — every NetFaultPlan shape against every frame type must end in a
// classified FrontendStatus, never a crash, hang, or wrong answer.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "obs/counters.h"
#include "robustness/checkpoint.h"
#include "robustness/retry.h"
#include "serve/client.h"
#include "serve/frontend.h"
#include "serve/queue.h"
#include "serve/supervisor.h"
#include "serve/warm_pool.h"
#include "serve/wire.h"

namespace pfact::serve {
namespace {

using robustness::Algorithm;
using robustness::Diagnostic;
using robustness::FailureKind;
using robustness::ReductionTask;
using robustness::Substrate;
using robustness::detail::ByteWriter;

ReductionTask gem_xor_task() {
  ReductionTask task;
  task.algorithm = Algorithm::kGem;
  task.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, false}};
  return task;
}

// A distinct-per-id task family, so cache hits cannot mask a fresh run.
ReductionTask unique_chain_task(int id) {
  ReductionTask task;
  task.algorithm = Algorithm::kGep;
  task.u = 1 + id % 2;
  task.w = 1;
  task.depth = 2 + static_cast<std::size_t>(id % 7);
  return task;
}

std::string unique_socket_path() {
  static int counter = 0;
  return "/tmp/pfact_fe_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(++counter) + ".sock";
}

int raw_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

std::string raw_frame(std::uint8_t type, std::string_view payload) {
  ByteWriter w;
  w.put_u32(kFrameMagic);
  w.put_u8(type);
  w.put_u64(payload.size());
  w.put_u32(robustness::crc32(payload.data(), payload.size()));
  w.put_bytes(payload.data(), payload.size());
  return w.take();
}

bool wait_until(const std::function<bool()>& cond,
                std::chrono::milliseconds timeout =
                    std::chrono::milliseconds(5000)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

// One service + frontend on a fresh Unix socket, small but real.
struct Rig {
  explicit Rig(std::size_t max_connections = 32,
               std::chrono::milliseconds read_deadline =
                   std::chrono::milliseconds(400)) {
    ::signal(SIGPIPE, SIG_IGN);
    ServiceOptions so;
    so.dispatchers = 2;
    so.queue_depth = 8;
    so.cache_capacity = 64;
    so.pool.workers = 2;
    service = std::make_unique<ReductionService>(so);
    FrontendOptions fo;
    fo.unix_path = unique_socket_path();
    fo.max_connections = max_connections;
    fo.read_deadline = read_deadline;
    fo.write_deadline = std::chrono::milliseconds(2000);
    frontend = std::make_unique<Frontend>(*service, fo);
  }

  ClientOptions client_options() const {
    ClientOptions co;
    co.unix_path = frontend->unix_path();
    co.retry.max_attempts = 3;
    co.retry.base_delay = std::chrono::milliseconds(1);
    return co;
  }

  std::unique_ptr<ReductionService> service;
  std::unique_ptr<Frontend> frontend;
};

TEST(FrontendTaxonomy, EveryStatusIsNamedCountedDiagnosedAndSwept) {
  EXPECT_EQ(all_frontend_statuses().size(), 6u);
  for (FrontendStatus s : all_frontend_statuses()) {
    EXPECT_STRNE(frontend_status_name(s), "?");
    EXPECT_STRNE(obs::counter_name(frontend_status_counter(s)), "?");
    EXPECT_NE(diagnose_frontend_status(s), Diagnostic::kInternalError);
  }
  // The retry table the client acts on: malformed is the one fail-fast.
  EXPECT_EQ(robustness::classify_diagnostic(
                diagnose_frontend_status(FrontendStatus::kMalformedFrame)),
            FailureKind::kFatal);
  for (FrontendStatus s :
       {FrontendStatus::kDeadline, FrontendStatus::kConnReset,
        FrontendStatus::kOverloaded, FrontendStatus::kDraining}) {
    EXPECT_EQ(robustness::classify_diagnostic(diagnose_frontend_status(s)),
              FailureKind::kTransient)
        << frontend_status_name(s);
  }
}

TEST(FrontendTaxonomy, NetFaultShapesAreNamedAndSwept) {
  EXPECT_EQ(all_net_faults().size(), 6u);
  for (NetFault f : all_net_faults()) EXPECT_STRNE(net_fault_name(f), "?");
}

TEST(FrontendCodec, ResponseRoundTripsAndRejectsOutOfRangeOrdinals) {
  FrontendResponse resp;
  resp.status = FrontendStatus::kOverloaded;
  resp.admission = Admission::kShedQueueFull;
  resp.from_cache = false;
  resp.certified = true;
  resp.value = true;
  resp.certified_by = Substrate::kRational;
  resp.report.diagnostic = Diagnostic::kOverloaded;
  resp.report.detail = "shed";

  const std::string payload = encode_response(resp);
  FrontendResponse back;
  ASSERT_TRUE(decode_response(payload, back));
  EXPECT_EQ(back.status, resp.status);
  EXPECT_EQ(back.admission, resp.admission);
  EXPECT_EQ(back.certified, resp.certified);
  EXPECT_EQ(back.value, resp.value);
  EXPECT_EQ(back.certified_by, resp.certified_by);
  EXPECT_EQ(back.report.diagnostic, resp.report.diagnostic);
  EXPECT_EQ(back.report.detail, resp.report.detail);

  // Out-of-range status ordinal (byte 0 of the LE u32).
  std::string bad = payload;
  bad[0] = 99;
  EXPECT_FALSE(decode_response(bad, back));
  // Truncation at every boundary parses nowhere.
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{9},
                          payload.size() - 1}) {
    EXPECT_FALSE(decode_response(std::string_view(payload).substr(0, cut),
                                 back))
        << cut;
  }
}

TEST(FrontendService, PendingNotifyOnDoneFiresExactlyOnce) {
  ServiceOptions so;
  so.dispatchers = 1;
  so.pool.workers = 1;
  ReductionService service(so);
  auto pending = service.submit(gem_xor_task());
  std::atomic<int> fired{0};
  pending->notify_on_done([&] { ++fired; });
  pending->wait();
  EXPECT_TRUE(wait_until([&] { return fired.load() == 1; }));
  EXPECT_NE(pending->poll_response(), nullptr);
  // Registration after resolution fires immediately, still exactly once.
  std::atomic<int> late{0};
  pending->notify_on_done([&] { ++late; });
  EXPECT_EQ(late.load(), 1);
}

TEST(FrontendRoundTrip, UnixSocketServesACertifiedAnswerThenFromCache) {
  Rig rig;
  ASSERT_TRUE(rig.frontend->running());
  Client client(rig.client_options());

  const ReductionTask task = gem_xor_task();
  ClientResult first = client.submit(task);
  ASSERT_TRUE(first.ok) << frontend_status_name(first.status);
  EXPECT_EQ(first.status, FrontendStatus::kAccepted);
  EXPECT_EQ(first.attempts, 1u);
  EXPECT_TRUE(first.response.certified);
  EXPECT_EQ(first.response.value, task.expected());
  EXPECT_FALSE(first.response.from_cache);

  ClientResult second = client.submit(task);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.response.from_cache);
  EXPECT_EQ(second.response.value, task.expected());
  EXPECT_EQ(rig.frontend->stats().status(FrontendStatus::kAccepted), 2u);
}

TEST(FrontendRoundTrip, TcpLoopbackServesTheSameAnswer) {
  ::signal(SIGPIPE, SIG_IGN);
  ServiceOptions so;
  so.pool.workers = 1;
  ReductionService service(so);
  FrontendOptions fo;
  fo.tcp = true;
  fo.tcp_port = 0;  // ephemeral
  Frontend frontend(service, fo);
  ASSERT_TRUE(frontend.running());
  ASSERT_NE(frontend.tcp_port(), 0);

  ClientOptions co;
  co.tcp = true;
  co.tcp_port = frontend.tcp_port();
  Client client(co);
  ClientResult r = client.submit(gem_xor_task());
  ASSERT_TRUE(r.ok) << frontend_status_name(r.status);
  EXPECT_EQ(r.response.value, gem_xor_task().expected());
}

TEST(FrontendRoundTrip, SocketAnswerDecodesBitEqualToInProcessBaseline) {
  // In-process baseline: the same supervised path a direct caller takes.
  WarmPoolOptions po;
  po.workers = 1;
  WarmPool pool(po);
  const ReductionTask task = gem_xor_task();
  const SupervisedReport baseline = supervised_run(pool, task, {});
  ASSERT_TRUE(baseline.certified);

  Rig rig;
  Client client(rig.client_options());
  ClientResult r = client.submit(task);
  ASSERT_TRUE(r.ok);
  ASSERT_TRUE(r.response.certified);
  EXPECT_EQ(r.response.value, baseline.value);
  EXPECT_EQ(r.response.certified_by, baseline.certified_by);
  const robustness::RunReport& got = r.response.report;
  const robustness::RunReport& want = baseline.final_report;
  EXPECT_EQ(got.diagnostic, want.diagnostic);
  EXPECT_EQ(got.value, want.value);
  EXPECT_EQ(got.order, want.order);
  EXPECT_EQ(got.decoded_entry, want.decoded_entry);  // bit-equal
  EXPECT_EQ(got.steps_used, want.steps_used);
  ASSERT_EQ(got.trace.size(), want.trace.size());
  for (std::size_t i = 0; i < want.trace.size(); ++i) {
    EXPECT_EQ(got.trace[i].column, want.trace[i].column);
    EXPECT_EQ(got.trace[i].pivot_pos, want.trace[i].pivot_pos);
    EXPECT_EQ(got.trace[i].pivot_row, want.trace[i].pivot_row);
    EXPECT_EQ(got.trace[i].action, want.trace[i].action);
  }
}

// The rejection matrix: every NetFault shape x every frame type. The
// contract is classification, not success: each cell must end in exactly
// one FrontendStatus (observable via the server's stats or the client's
// decoded response), and the server must still serve cleanly afterwards.
TEST(FrontendRejectionMatrix, EveryFaultShapeTimesEveryFrameTypeClassifies) {
  ::signal(SIGPIPE, SIG_IGN);
  Rig rig(32, std::chrono::milliseconds(250));
  TaskRequest req;
  req.task = gem_xor_task();
  const std::string payload = encode_request(req);

  // kRequest, kCheckpoint, kResult, kResponse, and an unknown ordinal.
  const std::vector<std::uint8_t> frame_types = {1, 2, 3, 4, 9};
  std::uint64_t expect_resets = 0;

  for (NetFault fault : all_net_faults()) {
    if (fault == NetFault::kNone) continue;
    for (std::uint8_t type : frame_types) {
      SCOPED_TRACE(std::string(net_fault_name(fault)) + " x type " +
                   std::to_string(type));
      const std::string frame = raw_frame(type, payload);
      const int fd = raw_connect(rig.frontend->unix_path());
      ASSERT_GE(fd, 0);

      bool expect_response = true;
      FrontendStatus want = FrontendStatus::kMalformedFrame;
      switch (fault) {
        case NetFault::kNone: break;
        case NetFault::kTornFrame:
          // Header plus half the payload, then vanish. With a valid request
          // header the server waits for the payload and the EOF is a
          // deterministic kConnReset; a refused type races the refusal write
          // against our close, so only type 1 is counted below.
          write_all(fd, frame.data(),
                    kFrameHeaderBytes + (frame.size() - kFrameHeaderBytes) / 2);
          expect_response = false;
          if (type == 1) ++expect_resets;
          break;
        case NetFault::kMidFrameClose:
          // Die INSIDE the header: the server never even has a declared
          // length to wait for, so every type is a deterministic reset.
          write_all(fd, frame.data(), kFrameHeaderBytes / 2);
          expect_response = false;
          ++expect_resets;
          break;
        case NetFault::kDribble:
          for (std::size_t i = 0; i < frame.size(); ++i) {
            if (!write_all(fd, frame.data() + i, 1)) break;  // early refusal
          }
          // A dribbled REQUEST must still be served: partial-read proof.
          want = type == 1 ? FrontendStatus::kAccepted
                           : FrontendStatus::kMalformedFrame;
          break;
        case NetFault::kStalledReader:
          // A started frame that never completes: the slowloris. Nothing
          // more is written; the server's read deadline must evict. A
          // non-request type is refused at the header, before the stall
          // can matter.
          write_all(fd, frame.data(),
                    kFrameHeaderBytes + (frame.size() - kFrameHeaderBytes) / 2);
          want = type == 1 ? FrontendStatus::kDeadline
                           : FrontendStatus::kMalformedFrame;
          break;
        case NetFault::kGarbagePreamble: {
          const std::string junk(32, '\xAB');  // 0xAB never starts a magic
          write_all(fd, junk.data(), junk.size());
          want = FrontendStatus::kMalformedFrame;
          break;
        }
      }

      if (expect_response) {
        FrameType rtype = FrameType::kRequest;
        std::string rpayload;
        const WireStatus st =
            read_frame(fd, rtype, rpayload,
                       std::chrono::steady_clock::now() +
                           std::chrono::seconds(10));
        ASSERT_EQ(st, WireStatus::kOk) << wire_status_name(st);
        ASSERT_EQ(rtype, FrameType::kResponse);
        FrontendResponse resp;
        ASSERT_TRUE(decode_response(rpayload, resp));
        EXPECT_EQ(resp.status, want)
            << frontend_status_name(resp.status);
        if (resp.status == FrontendStatus::kAccepted) {
          EXPECT_TRUE(resp.certified);
          EXPECT_EQ(resp.value, req.task.expected());
        } else {
          // Classified refusals carry the mapped diagnostic.
          EXPECT_EQ(resp.report.diagnostic,
                    diagnose_frontend_status(resp.status));
        }
      }
      ::close(fd);
    }
  }

  // Every torn/mid-frame close must have been counted as a conn-reset.
  EXPECT_TRUE(wait_until([&] {
    return rig.frontend->stats().status(FrontendStatus::kConnReset) >=
           expect_resets;
  })) << rig.frontend->stats().status(FrontendStatus::kConnReset);

  // The server survived the whole matrix: full coverage of the refusal
  // statuses, and a clean request still round-trips.
  const Frontend::Stats stats = rig.frontend->stats();
  EXPECT_GT(stats.status(FrontendStatus::kMalformedFrame), 0u);
  EXPECT_GT(stats.status(FrontendStatus::kDeadline), 0u);
  EXPECT_GT(stats.status(FrontendStatus::kConnReset), 0u);
  EXPECT_GT(stats.status(FrontendStatus::kAccepted), 0u);
  Client client(rig.client_options());
  ClientResult after = client.submit(gem_xor_task());
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.response.value, gem_xor_task().expected());
}

TEST(FrontendDeadlines, SlowlorisIsEvictedWithAClassifiedResponse) {
  Rig rig(32, std::chrono::milliseconds(200));
  const int fd = raw_connect(rig.frontend->unix_path());
  ASSERT_GE(fd, 0);
  // Five header bytes, then silence.
  TaskRequest slow_req;
  slow_req.task = gem_xor_task();
  const std::string frame = raw_frame(1, encode_request(slow_req));
  ASSERT_TRUE(write_all(fd, frame.data(), 5));

  FrameType type = FrameType::kRequest;
  std::string payload;
  const WireStatus st = read_frame(
      fd, type, payload,
      std::chrono::steady_clock::now() + std::chrono::seconds(5));
  ASSERT_EQ(st, WireStatus::kOk);
  ASSERT_EQ(type, FrameType::kResponse);
  FrontendResponse resp;
  ASSERT_TRUE(decode_response(payload, resp));
  EXPECT_EQ(resp.status, FrontendStatus::kDeadline);
  EXPECT_EQ(resp.report.diagnostic, Diagnostic::kDeadlineExceeded);
  ::close(fd);
  EXPECT_EQ(rig.frontend->stats().status(FrontendStatus::kDeadline), 1u);
}

TEST(FrontendOverload, ConnectionBoundShedsWithClassifiedRefusal) {
  Rig rig(/*max_connections=*/1);
  // One idle connection pins the only slot.
  const int holder = raw_connect(rig.frontend->unix_path());
  ASSERT_GE(holder, 0);
  // The holder registers with the event loop before the next accept.
  ASSERT_TRUE(wait_until([&] {
    return rig.frontend->stats().conns_accepted >= 1;
  }));

  ClientOptions co = rig.client_options();
  co.retry.max_attempts = 2;
  Client client(co);
  ClientResult shed = client.submit(gem_xor_task());
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.status, FrontendStatus::kOverloaded);
  EXPECT_EQ(shed.diagnostic, Diagnostic::kOverloaded);
  EXPECT_EQ(shed.outcome, FailureKind::kTransient);
  EXPECT_EQ(shed.attempts, 2u);  // retried, still shed

  ::close(holder);
  ASSERT_TRUE(wait_until([&] {
    return rig.frontend->stats().clean_closes >= 1;
  }));
  ClientResult ok = client.submit(gem_xor_task());
  ASSERT_TRUE(ok.ok);  // the slot freed; the same client now succeeds
  EXPECT_GE(rig.frontend->stats().status(FrontendStatus::kOverloaded), 2u);
}

TEST(FrontendDrain, RefusesMidDrainRequestsAndFinishesInFlight) {
  Rig rig;
  Client client(rig.client_options());
  ASSERT_TRUE(client.submit(gem_xor_task()).ok);

  // A connection caught mid-frame when the drain starts: its request must
  // still be answered — with kDraining, not silence.
  const int fd = raw_connect(rig.frontend->unix_path());
  ASSERT_GE(fd, 0);
  TaskRequest req;
  req.task = gem_xor_task();
  const std::string frame = raw_frame(1, encode_request(req));
  ASSERT_TRUE(write_all(fd, frame.data(), kFrameHeaderBytes + 4));
  ASSERT_TRUE(wait_until([&] {
    return rig.frontend->stats().conns_accepted >= 2;
  }));

  rig.frontend->begin_drain();
  ASSERT_TRUE(write_all(fd, frame.data() + kFrameHeaderBytes + 4,
                        frame.size() - kFrameHeaderBytes - 4));

  FrameType type = FrameType::kRequest;
  std::string payload;
  ASSERT_EQ(read_frame(fd, type, payload,
                       std::chrono::steady_clock::now() +
                           std::chrono::seconds(5)),
            WireStatus::kOk);
  FrontendResponse resp;
  ASSERT_TRUE(decode_response(payload, resp));
  EXPECT_EQ(resp.status, FrontendStatus::kDraining);
  EXPECT_EQ(resp.report.diagnostic, Diagnostic::kCancelled);
  ::close(fd);

  EXPECT_TRUE(wait_until([&] { return rig.frontend->drained(); }));
  // Draining stopped the listener: new connections are refused outright.
  EXPECT_LT(raw_connect(rig.frontend->unix_path()), 0);
  ClientResult post = client.submit(gem_xor_task());
  EXPECT_FALSE(post.ok);
}

TEST(FrontendDrain, SigtermInstallsAndTriggersGracefulDrain) {
  Frontend::install_sigterm_drain();
  Rig rig;
  Client client(rig.client_options());
  ASSERT_TRUE(client.submit(gem_xor_task()).ok);

  ::raise(SIGTERM);
  EXPECT_TRUE(wait_until([&] { return rig.frontend->drained(); }));
  Frontend::reset_sigterm_for_testing();

  // Default disposition back on, so a later real SIGTERM is not swallowed.
  ::signal(SIGTERM, SIG_DFL);
}

TEST(FrontendClient, RetriesThroughATornFrameToACertifiedAnswer) {
  Rig rig;
  ClientOptions co = rig.client_options();
  co.fault.fault = NetFault::kTornFrame;
  co.fault.seed = 7;
  co.fault.on_attempt = 1;
  Client client(co);

  ClientResult r = client.submit(unique_chain_task(1));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.attempts, 2u);  // sabotaged once, clean retry succeeded
  ASSERT_EQ(r.backoffs.size(), 1u);
  EXPECT_EQ(r.backoffs[0], co.retry.backoff(1));
  EXPECT_EQ(r.response.value, unique_chain_task(1).expected());
}

TEST(FrontendClient, DribbleSucceedsFirstAttemptProvingPartialReads) {
  Rig rig;
  ClientOptions co = rig.client_options();
  co.fault.fault = NetFault::kDribble;
  co.fault.on_attempt = 1;
  Client client(co);
  ClientResult r = client.submit(gem_xor_task());
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.attempts, 1u);  // no retry needed: dribble is slow, not wrong
}

TEST(FrontendClient, BackoffMirrorsRetryPolicyBitForBit) {
  // Nobody listening: every attempt is a transient kConnReset.
  ClientOptions co;
  co.unix_path = unique_socket_path();  // never bound
  co.retry.max_attempts = 4;
  co.retry.base_delay = std::chrono::milliseconds(10);
  co.retry.jitter_seed = 123;
  std::vector<std::chrono::milliseconds> slept;
  co.sleeper = [&](std::chrono::milliseconds d) { slept.push_back(d); };
  Client client(co);

  ClientResult r = client.submit(gem_xor_task());
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.status, FrontendStatus::kConnReset);
  EXPECT_EQ(r.diagnostic, Diagnostic::kConnReset);
  EXPECT_EQ(r.outcome, FailureKind::kTransient);
  EXPECT_EQ(r.attempts, 4u);
  ASSERT_EQ(slept.size(), 3u);
  for (std::size_t i = 0; i < slept.size(); ++i) {
    EXPECT_EQ(slept[i], co.retry.backoff(i + 1)) << i;  // bit-reproducible
  }
  EXPECT_EQ(r.backoffs, slept);
}

}  // namespace
}  // namespace pfact::serve
