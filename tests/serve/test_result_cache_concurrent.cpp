// ResultCache under real contention (PR 10 satellite). Every shard runs its
// cache with dispatcher threads filling and the frontend's jobs reading, so
// the lock discipline must hold under genuine interleaving — this suite is
// the TSan lane's witness. It rides the `robustness` ctest label ON PURPOSE:
// the sanitizer lanes exclude `serve` (real forks and signals live there),
// and this file has neither — just threads hammering one cache.
//
// The accounting assertions are PINNED, not "roughly": with unique keys,
// every insert is a fill, the resident set ends exactly at capacity, and
// therefore evictions == fills - capacity regardless of interleaving. A
// concurrency bug that double-evicts or loses a fill breaks the arithmetic
// even when TSan is off.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "serve/result_cache.h"

namespace pfact::serve {
namespace {

std::string nth_key(std::size_t t, std::size_t i) {
  return "cache-key-" + std::to_string(t) + "-" + std::to_string(i);
}

CacheEntry nth_entry(std::size_t t, std::size_t i) {
  CacheEntry e;
  e.value = ((t + i) % 2) != 0;
  // No final_checkpoint on purpose: the envelope leg has its own
  // single-threaded suite; here every byte of contention goes to the
  // LRU/CRC machinery.
  return e;
}

TEST(ResultCacheConcurrent, PinnedEvictionArithmeticAcrossFillerThreads) {
  constexpr std::size_t kCapacity = 64;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 64;
  ResultCache cache(kCapacity);

  std::vector<std::thread> fillers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    fillers.emplace_back([&cache, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        cache.insert(nth_key(t, i), nth_entry(t, i));
      }
    });
  }
  for (auto& th : fillers) th.join();

  const ResultCache::Stats st = cache.stats();
  EXPECT_EQ(st.fills, kThreads * kPerThread);
  EXPECT_EQ(cache.size(), kCapacity);
  // The pinned identity: unique keys, so every insert filled, and exactly
  // fills - capacity of them must have been evicted to land at capacity.
  EXPECT_EQ(st.evictions, kThreads * kPerThread - kCapacity);
  EXPECT_EQ(st.corrupt, 0u);
}

TEST(ResultCacheConcurrent, FillHitEvictStormKeepsTheLedgerExact) {
  constexpr std::size_t kCapacity = 32;
  constexpr std::size_t kFillers = 3;
  constexpr std::size_t kReaders = 3;
  constexpr std::size_t kPerThread = 128;
  ResultCache cache(kCapacity);

  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> hits_seen{0};
  std::atomic<bool> checksum_sink{false};  // keeps the hit-path reads live

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kFillers; ++t) {
    threads.emplace_back([&cache, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        cache.insert(nth_key(t, i), nth_entry(t, i));
      }
    });
  }
  for (std::size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      CacheEntry out;
      for (std::size_t i = 0; i < kPerThread; ++i) {
        // Probe keys the fillers are racing to insert and evict; every
        // outcome is acceptable, but each must be classified.
        const CacheProbe p = cache.lookup(nth_key(r % kFillers, i), out);
        lookups.fetch_add(1, std::memory_order_relaxed);
        if (p == CacheProbe::kHit) {
          hits_seen.fetch_add(1, std::memory_order_relaxed);
          // TSan witness: the returned entry is read after the lock is
          // gone — a fill racing a hit on shared storage would fire here.
          checksum_sink.store(out.value, std::memory_order_relaxed);
        } else {
          EXPECT_EQ(p, CacheProbe::kMiss);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const ResultCache::Stats st = cache.stats();
  EXPECT_EQ(st.fills, kFillers * kPerThread);
  EXPECT_EQ(st.evictions, kFillers * kPerThread - kCapacity);
  EXPECT_EQ(cache.size(), kCapacity);
  // The reader-side tally and the cache's own ledger must agree exactly.
  EXPECT_EQ(st.hits, hits_seen.load());
  EXPECT_EQ(st.hits + st.misses, lookups.load());
  EXPECT_EQ(st.corrupt, 0u);
}

TEST(ResultCacheConcurrent, CorruptEntryIsClassifiedExactlyOnceUnderRacingReads) {
  ResultCache cache(16);
  const std::string key = "poisoned-key";
  cache.insert(key, CacheEntry{true, robustness::Substrate::kDouble, ""});
  ASSERT_TRUE(cache.corrupt_entry_for_testing(key));

  // Many threads race to read the poisoned entry. The contract: the damage
  // is classified (kCorruptEntry) by EXACTLY ONE reader — the drop-on-read
  // must be atomic with the classification — and nobody is ever served the
  // corrupt value. Everyone else sees a plain miss.
  constexpr std::size_t kReaders = 8;
  std::atomic<std::uint64_t> corrupt_seen{0};
  std::atomic<std::uint64_t> hits_seen{0};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      CacheEntry out;
      const CacheProbe p = cache.lookup(key, out);
      if (p == CacheProbe::kCorruptEntry)
        corrupt_seen.fetch_add(1, std::memory_order_relaxed);
      if (p == CacheProbe::kHit) hits_seen.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& th : readers) th.join();

  EXPECT_EQ(corrupt_seen.load(), 1u);
  EXPECT_EQ(hits_seen.load(), 0u);
  const ResultCache::Stats st = cache.stats();
  EXPECT_EQ(st.corrupt, 1u);
  EXPECT_EQ(st.misses, kReaders - 1);
  EXPECT_EQ(cache.size(), 0u) << "the poisoned entry must be gone";

  // And the slot heals: a verified re-fill serves again.
  cache.insert(key, CacheEntry{true, robustness::Substrate::kDouble, ""});
  CacheEntry out;
  EXPECT_EQ(cache.lookup(key, out), CacheProbe::kHit);
  EXPECT_TRUE(out.value);
}

}  // namespace
}  // namespace pfact::serve
