// WorkerPool lifecycle tests: real forked workers, real deaths. Every
// WorkerExit class the pool can report is produced here by actually ending
// a worker that way — SIGKILL, a genuine wild store, a nonzero _exit, a
// spinning worker caught by the watchdog, and RLIMIT_CPU's SIGXCPU — and
// each death leaves the supervisor process fully intact.

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "robustness/checkpoint.h"
#include "robustness/escalation.h"
#include "serve/supervisor.h"
#include "serve/worker_pool.h"

namespace pfact::serve {
namespace {

using robustness::Algorithm;
using robustness::CheckpointStore;
using robustness::Diagnostic;
using robustness::ReductionTask;

TaskRequest gem_request() {
  TaskRequest req;
  req.task.algorithm = Algorithm::kGem;
  req.task.instance =
      circuit::CvpInstance{circuit::xor_circuit(), {true, false}};
  return req;
}

TEST(WorkerPool, CompletedWorkerDeliversACertifiedResult) {
  WorkerPool pool;
  const TaskRequest req = gem_request();
  const WorkerRun run = pool.run_task(req, nullptr);
  ASSERT_EQ(run.exit, WorkerExit::kCompleted) << run.detail;
  ASSERT_TRUE(run.has_result);
  EXPECT_EQ(run.result.diagnostic, Diagnostic::kOk) << run.result.detail;
  EXPECT_EQ(run.result.value, req.task.expected());
  EXPECT_EQ(pool.stats().completed, 1u);
  EXPECT_EQ(pool.stats().crashed, 0u);
  EXPECT_EQ(pool.live_workers(), 0u);
}

TEST(WorkerPool, SigkilledWorkerIsClassifiedSignalled) {
  WorkerPool pool;
  TaskRequest req = gem_request();
  req.kill.mode = KillPlan::Mode::kSigkill;
  const WorkerRun run = pool.run_task(req, nullptr);
  EXPECT_EQ(run.exit, WorkerExit::kSignalled) << run.detail;
  EXPECT_EQ(run.term_signal, SIGKILL);
  EXPECT_FALSE(run.has_result);
  EXPECT_EQ(pool.stats().crashed, 1u);
}

TEST(WorkerPool, SegfaultingWorkerIsContained) {
  WorkerPool pool;
  TaskRequest req = gem_request();
  req.kill.mode = KillPlan::Mode::kSigsegv;
  const WorkerRun run = pool.run_task(req, nullptr);
  EXPECT_EQ(run.exit, WorkerExit::kSignalled) << run.detail;
  EXPECT_EQ(run.term_signal, SIGSEGV);
  EXPECT_FALSE(run.has_result);
  // The whole point: the SIGSEGV happened, and THIS process is still here.
}

TEST(WorkerPool, NonzeroExitIsItsOwnClass) {
  WorkerPool pool;
  TaskRequest req = gem_request();
  req.kill.mode = KillPlan::Mode::kExit;
  const WorkerRun run = pool.run_task(req, nullptr);
  EXPECT_EQ(run.exit, WorkerExit::kNonzeroExit) << run.detail;
  EXPECT_EQ(run.exit_code, kKillPlanExitCode);
}

TEST(WorkerPool, WatchdogKillsAWedgedWorker) {
  WorkerPool pool;
  TaskRequest req = gem_request();
  req.kill.mode = KillPlan::Mode::kSpin;  // never returns on its own
  const auto t0 = std::chrono::steady_clock::now();
  const WorkerRun run =
      pool.run_task(req, nullptr, std::chrono::milliseconds(200));
  EXPECT_EQ(run.exit, WorkerExit::kWatchdog) << run.detail;
  EXPECT_EQ(run.term_signal, SIGKILL);
  EXPECT_EQ(pool.stats().watchdog_kills, 1u);
  // The watchdog bounded the wait: well under the forever the spin wanted.
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(30));
}

TEST(WorkerPool, CpuRlimitSurfacesAsCpuLimit) {
  WorkerPool pool;
  TaskRequest req = gem_request();
  req.kill.mode = KillPlan::Mode::kSpin;
  req.rlimits.cpu_seconds = 1;  // the sandbox, not the watchdog, ends this
  const WorkerRun run = pool.run_task(req, nullptr);
  EXPECT_EQ(run.exit, WorkerExit::kCpuLimit) << run.detail;
  EXPECT_EQ(run.term_signal, SIGXCPU);
}

TEST(WorkerPool, CheckpointFramesAreVerifiedAndFiled) {
  WorkerPool pool;
  TaskRequest req = gem_request();
  req.checkpoint_every = 2;
  req.kill.mode = KillPlan::Mode::kSigkill;
  req.kill.after_saves = 2;  // die right after shipping the second save
  CheckpointStore store;
  const WorkerRun run = pool.run_task(req, &store);
  EXPECT_EQ(run.exit, WorkerExit::kSignalled) << run.detail;
  EXPECT_EQ(run.checkpoints_received, 2u);
  EXPECT_EQ(run.checkpoints_rejected, 0u);
  EXPECT_EQ(store.size(), 2u);
  // Saves land at multiples of the cadence; the newest is save #2.
  EXPECT_EQ(store.latest_step(), 4u);
}

TEST(WorkerPool, EveryExitClassHasAPrintableName) {
  for (WorkerExit e : all_worker_exits()) {
    EXPECT_STRNE(worker_exit_name(e), "?");
  }
  EXPECT_EQ(all_worker_exits().size(), 7u);
}

// fork() exhaustion (EAGAIN on a pid-starved machine) is not producible on
// demand, so the pool's fork seam injects it: the outcome must be the
// classified kForkFailure — a transient resource-exhaustion diagnostic the
// retry table backs off on — never a bare error string, and never a
// phantom worker in the stats.
TEST(WorkerPool, ForkFailureIsClassifiedAndRetryable) {
  WorkerPool pool;
  pool.set_fork_for_testing([] { return static_cast<pid_t>(-1); });
  const WorkerRun run = pool.run_task(gem_request(), nullptr);
  EXPECT_EQ(run.exit, WorkerExit::kForkFailure) << run.detail;
  EXPECT_FALSE(run.has_result);
  EXPECT_EQ(pool.stats().spawned, 0u);  // no worker ever existed
  EXPECT_EQ(pool.live_workers(), 0u);
  EXPECT_EQ(diagnose_worker_exit(run.exit),
            Diagnostic::kResourceExhausted);
  EXPECT_EQ(robustness::classify_diagnostic(
                diagnose_worker_exit(run.exit)),
            robustness::FailureKind::kTransient);
}

// The supervisor retries through injected fork failures: two refused forks
// followed by a healthy one still certify, with both refusals classified
// in the attempt log.
TEST(WorkerPool, SupervisorRetriesThroughForkFailures) {
  WorkerPool pool;
  int failures_left = 2;
  pool.set_fork_for_testing([&failures_left]() -> pid_t {
    if (failures_left > 0) {
      --failures_left;
      return -1;
    }
    return ::fork();
  });
  const TaskRequest req = gem_request();
  SupervisorOptions options;
  options.retry.max_attempts = 3;
  const SupervisedReport rep = supervised_run(pool, req.task, options);
  ASSERT_TRUE(rep.certified) << rep.to_string();
  EXPECT_EQ(rep.value, req.task.expected());
  ASSERT_EQ(rep.attempts.size(), 3u);
  EXPECT_EQ(rep.attempts[0].diagnostic, Diagnostic::kResourceExhausted);
  EXPECT_EQ(rep.attempts[1].diagnostic, Diagnostic::kResourceExhausted);
  EXPECT_EQ(rep.attempts[2].diagnostic, Diagnostic::kOk);
}

}  // namespace
}  // namespace pfact::serve
