// Cross-process crash/resume equivalence: the serve/ mirror of
// tests/robustness/test_crash_resume.cpp. A worker REALLY killed (SIGKILL
// or a genuine SIGSEGV) after any number of streamed checkpoint saves must
// be resumable by a fresh worker seeded over the pipe, and the supervised
// answer must match the in-process baseline exactly: same boolean,
// bit-equal decoded entry, event-for-event pivot trace. Plus the
// supervisor's exit-status -> Diagnostic mapping, observed end to end.

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "robustness/escalation.h"
#include "robustness/guarded_run.h"
#include "robustness/retry.h"
#include "serve/supervisor.h"
#include "serve/worker_pool.h"

namespace pfact::serve {
namespace {

using robustness::Algorithm;
using robustness::Diagnostic;
using robustness::FailureKind;
using robustness::ReductionTask;
using robustness::RunReport;
using robustness::Substrate;

bool traces_equal(const factor::PivotTrace& a, const factor::PivotTrace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].column != b[i].column || a[i].pivot_pos != b[i].pivot_pos ||
        a[i].pivot_row != b[i].pivot_row || a[i].action != b[i].action) {
      return false;
    }
  }
  return true;
}

std::vector<ReductionTask> equivalence_tasks() {
  std::vector<ReductionTask> tasks;
  ReductionTask gem;
  gem.algorithm = Algorithm::kGem;
  gem.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, false}};
  tasks.push_back(gem);
  ReductionTask gems = gem;
  gems.algorithm = Algorithm::kGems;
  gems.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, true}};
  tasks.push_back(gems);
  ReductionTask nonsing = gem;
  nonsing.algorithm = Algorithm::kGemNonsingular;
  nonsing.instance =
      circuit::CvpInstance{circuit::xor_circuit(), {false, true}};
  tasks.push_back(nonsing);
  ReductionTask gep;
  gep.algorithm = Algorithm::kGep;
  gep.u = 2;
  gep.w = 1;
  gep.depth = 1;
  tasks.push_back(gep);
  ReductionTask gqr;
  gqr.algorithm = Algorithm::kGqr;
  gqr.u = 1;
  gqr.w = -1;
  gqr.depth = 1;
  tasks.push_back(gqr);
  return tasks;
}

SupervisorOptions fast_retry_options() {
  SupervisorOptions opt;
  opt.retry.max_attempts = 3;
  opt.retry.base_delay = std::chrono::milliseconds(0);  // replay at speed
  opt.checkpoint_every = 2;
  return opt;
}

// Kill a real worker at EVERY checkpoint boundary (including "before any
// save") with alternating SIGKILL / wild-store SIGSEGV, resume in a fresh
// worker, and compare against the uninterrupted in-process baseline.
TEST(SupervisedResume, EveryKillPointResumesToTheSameDecodeAndTrace) {
  constexpr std::size_t kEvery = 2;
  WorkerPool pool;
  for (const ReductionTask& task : equivalence_tasks()) {
    const RunReport baseline = run_on_substrate(task, Substrate::kDouble);
    ASSERT_EQ(baseline.diagnostic, Diagnostic::kOk) << task.describe();

    // Learn how many saves an uninterrupted supervised run streams.
    SupervisorOptions probe = fast_retry_options();
    const SupervisedReport clean = supervised_run(pool, task, probe);
    ASSERT_TRUE(clean.certified) << task.describe() << "\n"
                                 << clean.to_string();
    ASSERT_EQ(clean.value, baseline.value) << task.describe();
    const std::size_t saves = clean.checkpoints_received;
    ASSERT_GT(saves, 0u) << task.describe();

    for (std::size_t j = 0; j <= saves; ++j) {
      SupervisorOptions opt = fast_retry_options();
      opt.kill_for_attempt = [j](std::size_t attempt) {
        KillPlan kill;
        if (attempt == 1) {
          kill.mode = (j % 2 == 0) ? KillPlan::Mode::kSigkill
                                   : KillPlan::Mode::kSigsegv;
          kill.after_saves = j;
        }
        return kill;
      };
      const SupervisedReport rep = supervised_run(pool, task, opt);
      ASSERT_TRUE(rep.certified)
          << task.describe() << " j=" << j << "\n" << rep.to_string();
      EXPECT_EQ(rep.value, baseline.value) << task.describe() << " j=" << j;
      EXPECT_EQ(rep.certified_by, Substrate::kDouble);
      // Bit-equal decode: the successor replayed the exact suffix
      // arithmetic on the snapshot it was handed over the pipe.
      EXPECT_EQ(rep.final_report.decoded_entry, baseline.decoded_entry)
          << task.describe() << " j=" << j;
      EXPECT_TRUE(traces_equal(rep.final_report.trace, baseline.trace))
          << task.describe() << " j=" << j;
      // Attempt 1 really died; attempt 2 finished the job.
      ASSERT_EQ(rep.attempts.size(), 2u) << task.describe() << " j=" << j;
      EXPECT_EQ(rep.attempts[0].diagnostic, Diagnostic::kWorkerFailure);
      EXPECT_EQ(rep.workers_spawned, 2u);
      EXPECT_EQ(rep.workers_crashed, 1u);
      if (j == 0) {
        // Killed before any save: the successor starts from scratch.
        EXPECT_EQ(rep.resume_handoffs, 0u) << task.describe();
        EXPECT_EQ(rep.final_report.steps_used, baseline.steps_used);
      } else {
        EXPECT_EQ(rep.resume_handoffs, 1u) << task.describe() << " j=" << j;
        EXPECT_TRUE(rep.attempts[1].resumed);
        // The successor re-executes only the steps after save j.
        EXPECT_EQ(rep.final_report.steps_used,
                  baseline.steps_used - j * kEvery)
            << task.describe() << " j=" << j;
      }
    }
  }
}

TEST(SupervisedResume, WatchdogDeathMapsToDeadlineExceededAndRetries) {
  WorkerPool pool;
  ReductionTask task;
  task.algorithm = Algorithm::kGem;
  task.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, true}};
  SupervisorOptions opt = fast_retry_options();
  opt.watchdog = std::chrono::milliseconds(200);
  opt.kill_for_attempt = [](std::size_t attempt) {
    KillPlan kill;
    if (attempt == 1) kill.mode = KillPlan::Mode::kSpin;  // wedge forever
    return kill;
  };
  const SupervisedReport rep = supervised_run(pool, task, opt);
  ASSERT_TRUE(rep.certified) << rep.to_string();
  ASSERT_GE(rep.attempts.size(), 2u);
  EXPECT_EQ(rep.attempts[0].diagnostic, Diagnostic::kDeadlineExceeded);
  EXPECT_EQ(rep.watchdog_kills, 1u);
  EXPECT_EQ(rep.value, task.expected());
}

TEST(SupervisedResume, CpuSandboxDeathMapsToResourceExhausted) {
  WorkerPool pool;
  ReductionTask task;
  task.algorithm = Algorithm::kGem;
  task.instance = circuit::CvpInstance{circuit::xor_circuit(), {false, true}};
  SupervisorOptions opt = fast_retry_options();
  opt.rlimits.cpu_seconds = 1;
  opt.kill_for_attempt = [](std::size_t attempt) {
    KillPlan kill;
    if (attempt == 1) kill.mode = KillPlan::Mode::kSpin;  // burn the budget
    return kill;
  };
  const SupervisedReport rep = supervised_run(pool, task, opt);
  ASSERT_TRUE(rep.certified) << rep.to_string();
  ASSERT_GE(rep.attempts.size(), 2u);
  EXPECT_EQ(rep.attempts[0].diagnostic, Diagnostic::kResourceExhausted);
  EXPECT_EQ(rep.value, task.expected());
}

TEST(SupervisedResume, RelentlessKillsExhaustTheLadderAsClassifiedFailure) {
  WorkerPool pool;
  ReductionTask task;
  task.algorithm = Algorithm::kGem;
  task.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, false}};
  SupervisorOptions opt = fast_retry_options();
  opt.retry.max_attempts = 2;
  opt.kill_for_attempt = [](std::size_t) {
    KillPlan kill;
    kill.mode = KillPlan::Mode::kSigkill;  // every attempt, every rung
    return kill;
  };
  const SupervisedReport rep = supervised_run(pool, task, opt);
  // Zero wrong answers: no worker ever finished, so there is no value —
  // only a classified transient failure, and the supervisor survived.
  EXPECT_FALSE(rep.certified);
  EXPECT_EQ(rep.outcome, FailureKind::kTransient);
  EXPECT_EQ(rep.final_report.diagnostic, Diagnostic::kWorkerFailure);
  EXPECT_EQ(rep.workers_crashed, rep.workers_spawned);
  EXPECT_EQ(rep.escalations, 2u);  // climbed the whole GEM ladder
}

TEST(SupervisedResume, DiagnoseWorkerExitIsTotalAndTransient) {
  for (WorkerExit e : all_worker_exits()) {
    const Diagnostic d = diagnose_worker_exit(e);
    EXPECT_NE(d, Diagnostic::kInternalError) << worker_exit_name(e);
    if (e == WorkerExit::kCompleted) {
      EXPECT_EQ(d, Diagnostic::kOk);
    } else {
      // Every death class is worth a fresh worker: transient, never fatal.
      EXPECT_EQ(robustness::classify_diagnostic(d), FailureKind::kTransient)
          << worker_exit_name(e);
    }
  }
}

}  // namespace
}  // namespace pfact::serve
