// The pfact_soak exit-code contract, pinned end to end: a clean short soak
// exits 0 in every mode, and ANY violation — including a fabricated one
// through the --inject-violation seam — exits nonzero AND prints the
// campaign seed, so a red CI run is always replayable from its last output
// line. The binary is exercised as a subprocess (not a linked library)
// because the exit status IS the contract: CI gates on it.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

namespace {

namespace fs = std::filesystem;

struct SoakResult {
  int exit_code = -1;
  std::string output;
};

SoakResult run_soak(const std::string& args) {
  const fs::path log =
      fs::path(testing::TempDir()) / "pfact_soak_cli_log.txt";
  const std::string cmd = std::string(PFACT_SOAK_BIN) + " --log " +
                          log.string() + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  SoakResult res;
  if (pipe == nullptr) return res;
  std::array<char, 4096> buf;
  while (std::fgets(buf.data(), buf.size(), pipe) != nullptr) {
    res.output += buf.data();
  }
  const int status = pclose(pipe);
  res.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return res;
}

// A fabricated violation must exit 1 and print the seed — in EVERY mode,
// because each mode has its own campaign loop and its own exit block, and
// any one of them silently returning 0 would let a red soak pass CI.
void expect_violation_fails(const std::string& mode_args) {
  const SoakResult res =
      run_soak(mode_args + " --campaigns 3 --seed 77 --inject-violation 1");
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("FAILED"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("seed=77"), std::string::npos)
      << "a failing soak must print its seed for replay:\n" << res.output;
}

TEST(SoakCli, CleanShortSoakExitsZero) {
  const SoakResult res = run_soak("--campaigns 3 --seed 5");
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("held the contract"), std::string::npos)
      << res.output;
}

TEST(SoakCli, CleanShortNetSoakExitsZero) {
  const SoakResult res = run_soak("--net --campaigns 7 --seed 5");
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("held the contract"), std::string::npos)
      << res.output;
}

TEST(SoakCli, InjectedViolationFailsDefaultMode) {
  expect_violation_fails("");
}

TEST(SoakCli, InjectedViolationFailsKillMode) {
  expect_violation_fails("--kill-only");
}

TEST(SoakCli, InjectedViolationFailsServeMode) {
  expect_violation_fails("--serve");
}

TEST(SoakCli, CleanShortShardSoakExitsZero) {
  // 6 campaigns = one full shape rotation (clean, two kills, wedge,
  // brownout, fleet-kill), kept short because every shape forks and
  // destroys real shard processes.
  const SoakResult res = run_soak("--shard --campaigns 6 --seed 5");
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("held the contract"), std::string::npos)
      << res.output;
}

TEST(SoakCli, InjectedViolationFailsNetMode) {
  expect_violation_fails("--net");
}

TEST(SoakCli, InjectedViolationFailsShardMode) {
  expect_violation_fails("--shard");
}

TEST(SoakCli, UnknownFlagExitsTwoWithUsage) {
  const SoakResult res = run_soak("--no-such-flag");
  EXPECT_EQ(res.exit_code, 2) << res.output;
  EXPECT_NE(res.output.find("usage:"), std::string::npos) << res.output;
}

}  // namespace
