// The pfact_lint CLI contract, pinned end to end: exit 0 with "clean" on a
// clean tree, exit 1 with "N finding(s)" on findings, exit 2 on usage or
// I/O errors; --json emits a well-formed findings document; --list-rules
// enumerates the catalogue. The meta-test at the bottom keeps the rule
// registry honest: every advertised rule ID must have at least one seeded
// violation fixture that actually produces it, and a `rule` line in the
// committed manifest — a rule nobody can trip is a rule nobody maintains.
//
// The binary is exercised as a subprocess (not a linked library) because
// the exit status IS the contract: CI gates on it.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>

namespace {

namespace fs = std::filesystem;

struct LintResult {
  int exit_code = -1;
  std::string output;
};

LintResult run_lint(const std::string& args) {
  const std::string cmd = std::string(PFACT_LINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  LintResult res;
  if (pipe == nullptr) return res;
  std::array<char, 4096> buf;
  while (std::fgets(buf.data(), buf.size(), pipe) != nullptr) {
    res.output += buf.data();
  }
  const int status = pclose(pipe);
  res.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return res;
}

fs::path materialize(const std::string& overlay) {
  const fs::path fixtures(PFACT_LINT_FIXTURES);
  const fs::path dst =
      fs::path(testing::TempDir()) / ("pfact_lint_cli_" + overlay);
  fs::remove_all(dst);
  fs::copy(fixtures / "base", dst, fs::copy_options::recursive);
  if (!overlay.empty() && overlay != "base") {
    fs::copy(fixtures / overlay, dst,
             fs::copy_options::recursive | fs::copy_options::overwrite_existing);
  }
  return dst;
}

TEST(LintCli, CleanTreeExitsZero) {
  const fs::path root = materialize("base");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("pfact_lint: clean"), std::string::npos)
      << res.output;
}

TEST(LintCli, FindingsExitOneAndCount) {
  const fs::path root = materialize("dead_counter");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("finding(s)"), std::string::npos) << res.output;
}

TEST(LintCli, UnknownFlagExitsTwoWithUsage) {
  const LintResult res = run_lint("--no-such-flag");
  EXPECT_EQ(res.exit_code, 2) << res.output;
  EXPECT_NE(res.output.find("usage:"), std::string::npos) << res.output;
}

TEST(LintCli, MissingRootExitsTwo) {
  const LintResult res = run_lint("--json");
  EXPECT_EQ(res.exit_code, 2) << res.output;
}

TEST(LintCli, UnreadableRootExitsTwo) {
  const LintResult res = run_lint(
      "--root " +
      (fs::path(testing::TempDir()) / "lint_cli_no_such_tree").string());
  EXPECT_EQ(res.exit_code, 2) << res.output;
}

// --json on a clean tree: count 0, empty findings array, root echoed.
TEST(LintCli, JsonCleanDocument) {
  const fs::path root = materialize("base");
  const LintResult res = run_lint("--root " + root.string() + " --json");
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("\"count\": 0"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("\"findings\": []"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find(root.filename().string()), std::string::npos)
      << res.output;
}

// --json with findings: every finding object carries the five keys the CI
// artifact consumers rely on, braces/brackets balance, and the count field
// agrees with the number of finding objects.
TEST(LintCli, JsonFindingsDocumentIsWellFormed) {
  const fs::path root = materialize("dead_counter");
  const LintResult res = run_lint("--root " + root.string() + " --json");
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("\"count\": 1"), std::string::npos) << res.output;
  for (const char* key :
       {"\"rule\":", "\"slug\":", "\"file\":", "\"line\":", "\"message\":"}) {
    EXPECT_NE(res.output.find(key), std::string::npos)
        << "missing " << key << " in:\n" << res.output;
  }
  EXPECT_NE(res.output.find("\"PL017\""), std::string::npos) << res.output;
  int braces = 0;
  int brackets = 0;
  for (const char c : res.output) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0) << res.output;
  EXPECT_EQ(brackets, 0) << res.output;
}

// --list-rules prints one `PLxxx slug  summary` line per rule, exit 0.
TEST(LintCli, ListRulesEnumeratesTheCatalogue) {
  const LintResult res = run_lint("--list-rules");
  EXPECT_EQ(res.exit_code, 0) << res.output;
  std::istringstream lines(res.output);
  std::string line;
  std::size_t rules = 0;
  const std::regex shape(R"(^PL\d{3} [a-z0-9-]+  \S.*$)");
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(std::regex_match(line, shape)) << "bad line: " << line;
    ++rules;
  }
  EXPECT_GE(rules, 19u) << res.output;
}

// The registry meta-test. For every rule ID the binary advertises:
//   1. some committed violation fixture actually produces a finding with
//      that ID (run each overlay once, union the IDs seen);
//   2. the repo manifest carries its `rule <id> <slug>` registry line.
TEST(LintCli, EveryAdvertisedRuleHasAFixtureAndAManifestEntry) {
  const LintResult listing = run_lint("--list-rules");
  ASSERT_EQ(listing.exit_code, 0) << listing.output;
  std::map<std::string, std::string> advertised;  // id -> slug
  {
    std::istringstream lines(listing.output);
    std::string id, slug;
    std::string rest;
    while (lines >> id >> slug && std::getline(lines, rest)) {
      advertised[id] = slug;
    }
  }
  ASSERT_GE(advertised.size(), 19u) << listing.output;

  std::set<std::string> produced;
  const std::regex finding_id(R"(\b(PL\d{3})\b)");
  for (const auto& entry : fs::directory_iterator(PFACT_LINT_FIXTURES)) {
    if (!entry.is_directory()) continue;
    const std::string overlay = entry.path().filename().string();
    if (overlay == "base") continue;
    const fs::path root = materialize(overlay);
    const LintResult res = run_lint("--root " + root.string());
    EXPECT_EQ(res.exit_code, 1)
        << "violation fixture " << overlay << " did not fail:\n"
        << res.output;
    for (auto it = std::sregex_iterator(res.output.begin(), res.output.end(),
                                        finding_id);
         it != std::sregex_iterator(); ++it) {
      produced.insert(it->str());
    }
  }

  std::set<std::string> registered;
  {
    std::ifstream manifest(std::string(PFACT_REPO_ROOT) +
                           "/tools/pfact_lint_manifest.txt");
    ASSERT_TRUE(manifest.good());
    std::string key, id, slug;
    std::string line;
    while (std::getline(manifest, line)) {
      std::istringstream fields(line);
      if (fields >> key >> id >> slug && key == "rule") registered.insert(id);
    }
  }

  for (const auto& [id, slug] : advertised) {
    EXPECT_NE(produced.count(id), 0u)
        << id << " (" << slug
        << ") has no violating fixture that produces it — a rule nobody can "
           "trip is a rule nobody maintains";
    EXPECT_NE(registered.count(id), 0u)
        << id << " (" << slug
        << ") has no `rule` registry line in tools/pfact_lint_manifest.txt "
           "— run pfact_lint --update-manifest";
  }
}

}  // namespace
