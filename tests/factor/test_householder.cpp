#include "factor/householder.h"

#include <gtest/gtest.h>

#include "factor/givens.h"
#include "matrix/generators.h"

namespace pfact::factor {
namespace {

TEST(Householder, ReconstructsRandom) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto a = gen::random_general(9, seed);
    auto res = householder_qr(a, true);
    EXPECT_TRUE(res.r.is_upper_triangular());
    Matrix<double> qtq = res.q.transposed() * res.q;
    EXPECT_LE(max_abs_diff(qtq, Matrix<double>::identity(9)), 1e-10);
    EXPECT_LE(max_abs_diff(res.q * res.r, a), 1e-10);
  }
}

TEST(Householder, AgreesWithGivensUpToRowSigns) {
  auto a = gen::random_nonsingular(8, 4);
  auto h = householder_qr(a, false).r;
  auto g = givens_qr(a, false).r;
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = i; j < 8; ++j)
      EXPECT_NEAR(std::abs(h(i, j)), std::abs(g(i, j)), 1e-9);
}

TEST(Householder, TriangularInputNeedsNoReflections) {
  Matrix<double> a{{2, 1, 1}, {0, 3, 1}, {0, 0, 4}};
  auto res = householder_qr(a, false);
  EXPECT_EQ(res.reflections, 0u);
  EXPECT_EQ(max_abs_diff(res.r, a), 0.0);
}

TEST(Householder, RectangularTallInput) {
  auto src = gen::random_general(7, 1);
  Matrix<double> a(7, 4);
  for (std::size_t i = 0; i < 7; ++i)
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = src(i, j);
  auto res = householder_qr(a, true);
  EXPECT_TRUE(res.r.is_upper_triangular());
  EXPECT_LE(max_abs_diff(res.q * res.r, a), 1e-10);
}

TEST(Householder, SignChoiceAvoidsCancellation) {
  // Column nearly parallel to e1: naive sign would cancel catastrophically;
  // with the stable choice the factorization stays accurate.
  Matrix<double> a{{1.0, 1.0}, {1e-14, 1.0}};
  auto res = householder_qr(a, true);
  EXPECT_LE(max_abs_diff(res.q * res.r, a), 1e-12);
  EXPECT_NEAR(std::abs(res.r(0, 0)), 1.0, 1e-10);
}

TEST(Householder, ZeroColumnSkipped) {
  Matrix<double> a{{0, 1}, {0, 2}};
  auto res = householder_qr(a, true);
  EXPECT_TRUE(res.r.is_upper_triangular());
  EXPECT_LE(max_abs_diff(res.q * res.r, a), 1e-12);
}

}  // namespace
}  // namespace pfact::factor
