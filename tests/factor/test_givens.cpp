// GQR tests: rotation correctness, A = QR reconstruction, orthogonality,
// agreement between the natural (sequential) and Sameh–Kuck (parallel)
// orderings, and rotation/stage counting (the work/depth contrast of the
// paper's introduction).
#include "factor/givens.h"

#include <gtest/gtest.h>

#include "matrix/generators.h"
#include "numeric/softfloat.h"

namespace pfact::factor {
namespace {

void expect_orthogonal(const Matrix<double>& q, double tol) {
  Matrix<double> qtq = q.transposed() * q;
  EXPECT_LE(max_abs_diff(qtq, Matrix<double>::identity(q.rows())), tol);
}

TEST(Givens, SingleRotationAnnihilates) {
  Matrix<double> a{{3, 1}, {4, 2}};
  auto res = givens_qr(a, true);
  EXPECT_EQ(res.rotations, 1u);
  EXPECT_NEAR(res.r(1, 0), 0.0, 1e-15);
  EXPECT_NEAR(res.r(0, 0), 5.0, 1e-12);  // sqrt(3^2+4^2)
  expect_orthogonal(res.q, 1e-12);
  EXPECT_LE(max_abs_diff(res.q * res.r, a), 1e-12);
}

TEST(Givens, DiagonalIsNonNegativeAfterElimination) {
  // r = sqrt(a_ii^2 + a_ji^2) > 0: a rotated-through diagonal entry is
  // forced positive — the reason Section 4 encodes booleans as +/-1 only on
  // columns that are never rotated through.
  auto a = gen::random_general(8, 5);
  auto res = givens_qr(a, false);
  for (std::size_t i = 0; i + 1 < 8; ++i) {
    EXPECT_GE(res.r(i, i), 0.0) << i;
  }
}

class GivensOrderingTest : public ::testing::TestWithParam<bool> {};

TEST_P(GivensOrderingTest, ReconstructsAndOrthogonal) {
  const bool sameh_kuck = GetParam();
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto a = gen::random_general(10, seed);
    auto res = sameh_kuck ? givens_qr_sameh_kuck(a, true)
                          : givens_qr(a, true);
    EXPECT_TRUE(res.r.is_upper_triangular());
    expect_orthogonal(res.q, 1e-10);
    EXPECT_LE(max_abs_diff(res.q * res.r, a), 1e-10);
  }
}

TEST_P(GivensOrderingTest, RectangularInput) {
  const bool sameh_kuck = GetParam();
  Matrix<double> a(6, 3);
  auto rng = gen::random_general(6, 9);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = rng(i, j);
  auto res = sameh_kuck ? givens_qr_sameh_kuck(a, true)
                        : givens_qr(a, true);
  EXPECT_TRUE(res.r.is_upper_triangular());
  EXPECT_LE(max_abs_diff(res.q * res.r, a), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Orderings, GivensOrderingTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "SamehKuck" : "Natural";
                         });

TEST(Givens, BothOrderingsGiveSameRUpToRowSigns) {
  // R is unique up to the sign of each row (for full-rank A), so compare
  // |R| entrywise.
  auto a = gen::random_nonsingular(9, 3);
  auto r1 = givens_qr(a, false).r;
  auto r2 = givens_qr_sameh_kuck(a, false).r;
  for (std::size_t i = 0; i < 9; ++i)
    for (std::size_t j = i; j < 9; ++j)
      EXPECT_NEAR(std::abs(r1(i, j)), std::abs(r2(i, j)), 1e-9)
          << i << "," << j;
}

TEST(Givens, RotationAndStageCounts) {
  // Dense n x n: n(n-1)/2 rotations. Natural order: one stage each.
  // Sameh–Kuck: O(n) stages (exactly 2n-3 for dense square input).
  const std::size_t n = 12;
  auto a = gen::random_general(n, 1);
  auto nat = givens_qr(a, false);
  auto sk = givens_qr_sameh_kuck(a, false);
  EXPECT_EQ(nat.rotations, n * (n - 1) / 2);
  EXPECT_EQ(sk.rotations, n * (n - 1) / 2);
  EXPECT_EQ(nat.stages, nat.rotations);
  EXPECT_EQ(sk.stages, 2 * n - 3);
}

TEST(Givens, SkipsAlreadyZeroEntries) {
  Matrix<double> a{{1, 2, 3}, {0, 1, 2}, {0, 0, 1}};
  auto res = givens_qr(a, false);
  EXPECT_EQ(res.rotations, 0u);
  EXPECT_EQ(max_abs_diff(res.r, a), 0.0);
}

TEST(Givens, ZeroDiagonalNonzeroBelowStillWorks) {
  Matrix<double> a{{0, 1}, {2, 0}};
  auto res = givens_qr(a, true);
  EXPECT_NEAR(res.r(1, 0), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(res.r(0, 0)), 2.0, 1e-12);
  EXPECT_LE(max_abs_diff(res.q * res.r, a), 1e-12);
}

TEST(Givens, StepsRunsPrefixOfNaturalOrder) {
  auto a = gen::random_general(5, 2);
  Matrix<double> partial = a;
  givens_steps(partial, 4);  // column 0 fully annihilated (4 rotations)
  for (std::size_t j = 1; j < 5; ++j) EXPECT_EQ(partial(j, 0), 0.0);
  EXPECT_NE(partial(2, 1), 0.0);  // column 1 untouched below diagonal
  Matrix<double> full = a;
  givens_steps(full, 10);
  EXPECT_TRUE(full.is_upper_triangular());
}

TEST(Givens, WorksOverSoftFloat) {
  using F = numeric::Float53;
  Matrix<F> a(3, 3);
  auto src = gen::random_general(3, 8);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = F(src(i, j));
  auto res = givens_qr(a, false);
  EXPECT_TRUE(res.r.is_upper_triangular());
  // Against double GQR: identical operation sequence at 53 bits should give
  // near-identical results (sqrt in SoftFloat is correctly rounded; the
  // hardware hypot-free formula matches ours).
  auto dres = givens_qr(src, false);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_NEAR(res.r(i, j).to_double(), dres.r(i, j), 1e-12);
}

}  // namespace
}  // namespace pfact::factor
