#include "factor/triangular.h"

#include <gtest/gtest.h>

#include "matrix/generators.h"
#include "numeric/rational.h"

namespace pfact::factor {
namespace {

using numeric::Rational;

double residual_inf(const Matrix<double>& a, const std::vector<double>& x,
                    const std::vector<double>& b) {
  auto ax = matvec(a, x);
  double r = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i)
    r = std::max(r, std::abs(ax[i] - b[i]));
  return r;
}

TEST(Triangular, ForwardSolveKnown) {
  Matrix<double> l{{1, 0}, {2, 1}};
  auto y = forward_solve(l, {3.0, 8.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
}

TEST(Triangular, BackSolveKnown) {
  Matrix<double> u{{2, 1}, {0, 4}};
  auto x = back_solve(u, {4.0, 8.0});
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
}

TEST(Triangular, SingularDiagonalThrows) {
  Matrix<double> u{{0, 1}, {0, 1}};
  EXPECT_THROW(back_solve(u, {1.0, 1.0}), std::domain_error);
  EXPECT_THROW(forward_solve(u, {1.0, 1.0}), std::domain_error);
}

TEST(Triangular, SizeMismatchThrows) {
  Matrix<double> u{{1, 0}, {0, 1}};
  EXPECT_THROW(back_solve(u, {1.0}), std::invalid_argument);
}

class SolveTest : public ::testing::TestWithParam<PivotStrategy> {};

TEST_P(SolveTest, PluSolveResidualSmall) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto a = gen::random_nonsingular(10, seed);
    std::vector<double> b(10);
    for (std::size_t i = 0; i < 10; ++i) b[i] = static_cast<double>(i) - 4.5;
    auto x = solve_plu(a, b, GetParam());
    EXPECT_LE(residual_inf(a, x, b), 1e-8) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, SolveTest,
    ::testing::Values(PivotStrategy::kPartial, PivotStrategy::kMinimalSwap,
                      PivotStrategy::kMinimalShift),
    [](const auto& info) { return pivot_strategy_name(info.param); });

TEST(Solve, QrSolveBothOrderings) {
  auto a = gen::random_nonsingular(9, 2);
  std::vector<double> b(9, 1.0);
  for (bool sk : {false, true}) {
    auto x = solve_qr(a, b, sk);
    EXPECT_LE(residual_inf(a, x, b), 1e-9) << "sameh_kuck=" << sk;
  }
}

TEST(Solve, ExactRationalSolveIsExact) {
  auto a = gen::random_nonsingular_exact(6, 4, 3);
  std::vector<Rational> b(6);
  for (int i = 0; i < 6; ++i) b[i] = Rational(i - 3, 2);
  auto x = solve_plu(a, b, PivotStrategy::kMinimalShift);
  auto ax = matvec(a, x);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(ax[i], b[i]);
}

TEST(Solve, GepOnWilkinsonGrowthStillSolves) {
  auto a = gen::wilkinson_growth(20);
  std::vector<double> b(20, 1.0);
  auto x = solve_plu(a, b, PivotStrategy::kPartial);
  EXPECT_LE(residual_inf(a, x, b), 1e-6);  // growth 2^19 but residual ok
}

}  // namespace
}  // namespace pfact::factor

namespace pfact::factor {
namespace {

TEST(Refinement, RestoresAccuracyForMinimalPivoting) {
  // GEM on the Wilkinson growth matrix has ~2^(n-1) element growth; two
  // refinement sweeps recover a backward-stable solution.
  auto a = gen::wilkinson_growth(28);
  std::vector<double> b(28);
  for (int i = 0; i < 28; ++i) b[i] = std::sin(i + 1.0);
  auto plain = solve_plu(a, b, PivotStrategy::kMinimalSwap);
  auto refined = solve_plu_refined(a, b, PivotStrategy::kMinimalSwap, 2);
  double r_plain = residual_inf(a, plain, b);
  double r_refined = residual_inf(a, refined, b);
  EXPECT_LT(r_refined, 1e-12);
  EXPECT_LE(r_refined, r_plain);
}

TEST(Refinement, NoopOnAlreadyStableSolve) {
  auto a = gen::random_diagonally_dominant(10, 3);
  std::vector<double> b(10, 1.0);
  auto x = solve_plu_refined(a, b, PivotStrategy::kPartial, 1);
  EXPECT_LE(residual_inf(a, x, b), 1e-12);
}

TEST(SolveFactored, ReusesFactorization) {
  auto a = gen::random_nonsingular(8, 5);
  auto f = gep(a);
  for (double scale : {1.0, 2.0, -3.0}) {
    std::vector<double> b(8, scale);
    auto x = solve_factored(f, b);
    EXPECT_LE(residual_inf(a, x, b), 1e-9);
  }
}

}  // namespace
}  // namespace pfact::factor
