// Tests of the four pivoting strategies, including the behavioural contrasts
// the paper builds on: GE fails where pivoting succeeds; GEM/GEMS pick the
// LOWEST-indexed nonzero (not the largest); GEMS preserves the relative
// order of non-pivot rows while GEM does not; on strongly nonsingular input
// all strategies (even no pivoting) coincide in exact arithmetic.
#include "factor/gaussian.h"

#include <gtest/gtest.h>

#include "matrix/generators.h"
#include "numeric/rational.h"

namespace pfact::factor {
namespace {

using numeric::Rational;

// PA = LU reconstruction (P stacks original rows in pivot order).
template <class T>
void expect_plu_reconstructs(const Matrix<T>& a, const LuResult<T>& f,
                             double tol) {
  ASSERT_TRUE(f.ok);
  Matrix<T> pa = f.row_perm.apply_rows(a);
  Matrix<T> lu = f.l * f.u;
  EXPECT_LE(max_abs_diff(pa, lu), tol);
  EXPECT_TRUE(f.l.is_unit_lower_triangular());
  EXPECT_TRUE(f.u.is_upper_triangular());
}

struct StrategyCase {
  PivotStrategy strategy;
  const char* name;
};

class GeStrategyTest : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(GeStrategyTest, ReconstructsRandomNonsingular) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto a = gen::random_nonsingular(12, seed);
    auto f = ge_factor(a, GetParam().strategy);
    expect_plu_reconstructs(a, f, 1e-9);
  }
}

TEST_P(GeStrategyTest, ReconstructsDiagonallyDominant) {
  auto a = gen::random_diagonally_dominant(15, 7);
  auto f = ge_factor(a, GetParam().strategy);
  expect_plu_reconstructs(a, f, 1e-10);
}

TEST_P(GeStrategyTest, ExactRationalReconstructionIsExact) {
  auto a = gen::random_nonsingular_exact(8, 5, 11);
  auto f = ge_factor(a, GetParam().strategy);
  ASSERT_TRUE(f.ok);
  Matrix<Rational> pa = f.row_perm.apply_rows(a);
  EXPECT_EQ(pa, f.l * f.u);
}

TEST_P(GeStrategyTest, SingularMatrixYieldsSkipsNotCrashes) {
  if (GetParam().strategy == PivotStrategy::kNone) GTEST_SKIP();
  Matrix<double> a{{1, 2, 3}, {2, 4, 6}, {1, 1, 1}};  // rank 2
  auto f = ge_factor(a, GetParam().strategy);
  EXPECT_TRUE(f.ok);
  expect_plu_reconstructs(a, f, 1e-12);
  EXPECT_GE(f.trace.skip_count() + 0u, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, GeStrategyTest,
    ::testing::Values(StrategyCase{PivotStrategy::kNone, "GE"},
                      StrategyCase{PivotStrategy::kPartial, "GEP"},
                      StrategyCase{PivotStrategy::kMinimalSwap, "GEM"},
                      StrategyCase{PivotStrategy::kMinimalShift, "GEMS"}),
    [](const auto& info) { return info.param.name; });

TEST(GaussianNoPivot, FailsOnZeroPivot) {
  Matrix<double> a{{0, 1}, {1, 0}};
  auto f = ge(a);
  EXPECT_FALSE(f.ok);
  EXPECT_TRUE(f.trace.failed());
}

TEST(GaussianNoPivot, SucceedsOnStronglyNonsingular) {
  auto a = gen::random_diagonally_dominant(10, 1);
  EXPECT_TRUE(ge(a).ok);
}

TEST(GaussianPartial, ChoosesMaxMagnitudePivot) {
  Matrix<double> a{{1, 0, 0}, {-5, 1, 0}, {3, 0, 1}};
  auto f = gep(a);
  ASSERT_GE(f.trace.size(), 1u);
  EXPECT_EQ(f.trace[0].pivot_row, 1u);  // |-5| is the column max
  EXPECT_EQ(f.trace[0].action, PivotAction::kSwap);
}

TEST(GaussianMinimal, ChoosesLowestIndexedNonzero) {
  Matrix<double> a{{0, 1, 0}, {0, 0, 1}, {7, 0, 0}};
  for (auto s : {PivotStrategy::kMinimalSwap, PivotStrategy::kMinimalShift}) {
    auto f = ge_factor(a, s);
    ASSERT_GE(f.trace.size(), 1u);
    // Rows 0 and 1 are zero in column 0; row 2 is the lowest nonzero.
    EXPECT_EQ(f.trace[0].pivot_row, 2u);
  }
}

TEST(GaussianMinimal, MinimalBeatsMagnitude) {
  // GEM takes row 1 (first nonzero, value 1e-12); GEP takes row 2 (value 5).
  Matrix<double> a{{0, 1, 0}, {1e-12, 0, 1}, {5, 0, 0}};
  auto fm = gem(a);
  auto fp = gep(a);
  EXPECT_EQ(fm.trace[0].pivot_row, 1u);
  EXPECT_EQ(fp.trace[0].pivot_row, 2u);
}

TEST(GaussianShift, PreservesRelativeOrderOfNonPivotRows) {
  // Column 0: rows 0..2 zero, row 3 nonzero. GEMS must bring row 3 to the
  // top while keeping rows 0,1,2 in order below it; GEM swaps 0 <-> 3.
  Matrix<double> a{{0, 1, 0, 0},
                   {0, 2, 1, 0},
                   {0, 3, 0, 1},
                   {4, 4, 4, 4}};
  auto fs = gems(a);
  EXPECT_EQ(fs.row_perm.map(),
            (std::vector<std::size_t>{3, 0, 1, 2}));
  auto fm = gem(a);
  EXPECT_EQ(fm.row_perm[0], 3u);
  EXPECT_EQ(fm.row_perm[3], 0u);  // swap, not shift
}

TEST(GaussianStronglyNonsingular, AllStrategiesAgreeWithoutRowExchanges) {
  // "Clearly GEMS and GEM behave the same when fed with strongly nonsingular
  // matrices ... without performing any row exchange" (Section 3.1).
  auto a = gen::hilbert_exact(7);
  for (auto s : {PivotStrategy::kNone, PivotStrategy::kMinimalSwap,
                 PivotStrategy::kMinimalShift}) {
    auto f = ge_factor(a, s);
    ASSERT_TRUE(f.ok);
    EXPECT_TRUE(f.row_perm.is_identity()) << pivot_strategy_name(s);
    EXPECT_EQ(f.trace.swap_count(), 0u) << pivot_strategy_name(s);
  }
  // And the LU factorization is the unique one: compare GEM vs GE exactly.
  auto f1 = ge(a);
  auto f2 = gem(a);
  auto f3 = gems(a);
  EXPECT_EQ(f1.u, f2.u);
  EXPECT_EQ(f1.l, f2.l);
  EXPECT_EQ(f2.u, f3.u);
  EXPECT_EQ(f2.l, f3.l);
}

TEST(GaussianTrace, LanguageMembershipHelper) {
  Matrix<double> a{{0, 1}, {1, 0}};
  auto f = gep(a);
  // GEP used original row 1 to eliminate column 0.
  EXPECT_TRUE(f.trace.used_row_for_column(1, 0));
  EXPECT_FALSE(f.trace.used_row_for_column(0, 0));
}

TEST(EliminateSteps, PartialRunTransformsOnlyLeadingColumns) {
  Matrix<Rational> a{{2, 1, 1, 5},
                     {4, 3, 3, 6},
                     {8, 7, 9, 9}};
  Permutation perm(3);
  auto trace = eliminate_steps(a, PivotStrategy::kMinimalSwap, 1, &perm);
  EXPECT_EQ(trace.size(), 1u);
  // Column 0 eliminated below diagonal.
  EXPECT_TRUE(a(1, 0).is_zero());
  EXPECT_TRUE(a(2, 0).is_zero());
  // Row 1 = row1 - 2*row0, including the trailing "link" column.
  EXPECT_EQ(a(1, 3), Rational(-4));
  EXPECT_EQ(a(2, 3), Rational(-11));
  // Column 1 untouched below diagonal so far.
  EXPECT_EQ(a(2, 1), Rational(3));
}

TEST(EliminateSteps, RectangularLinkColumnsFollowRowOps) {
  // Wide matrix: elimination stops at the square core but row operations
  // must reach every column (this is how gadget link values propagate).
  Matrix<Rational> a{{1, 0, 7}, {1, 1, 9}};
  eliminate_steps(a, PivotStrategy::kMinimalShift, 2);
  EXPECT_EQ(a(1, 2), Rational(2));  // 9 - 7
}

TEST(Determinant, MatchesKnownValues) {
  Matrix<double> a{{1, 2}, {3, 4}};
  EXPECT_NEAR(det(a), -2.0, 1e-12);
  Matrix<Rational> b{{2, 0, 0}, {0, 3, 0}, {0, 0, 5}};
  EXPECT_EQ(det(b), Rational(30));
  // Permutation sign: antidiagonal identity of order 2 has det -1.
  Matrix<Rational> e{{0, 1}, {1, 0}};
  EXPECT_EQ(det(e), Rational(-1));
}

TEST(Determinant, SingularIsZero) {
  Matrix<double> a{{1, 2}, {2, 4}};
  EXPECT_NEAR(det(a), 0.0, 1e-12);
}

}  // namespace
}  // namespace pfact::factor
