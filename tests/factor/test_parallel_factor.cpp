// The parallel executions must be BIT-IDENTICAL to their sequential
// counterparts: parallelism reorders independent work only.
#include "factor/parallel_factor.h"

#include <gtest/gtest.h>

#include "matrix/generators.h"
#include "numeric/rational.h"

namespace pfact::factor {
namespace {

using numeric::Rational;

TEST(ParallelSamehKuck, BitIdenticalToSequential) {
  par::ThreadPool pool(4);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto a = gen::random_general(20, seed);
    auto seq = givens_qr_sameh_kuck(a, false);
    auto par_res = givens_qr_sameh_kuck_parallel(a, &pool);
    EXPECT_EQ(max_abs_diff(seq.r, par_res.r), 0.0) << seed;
    EXPECT_EQ(seq.rotations, par_res.rotations);
    EXPECT_EQ(seq.stages, par_res.stages);
  }
}

TEST(ParallelSamehKuck, StageCountIsLinear) {
  par::ThreadPool pool(4);
  auto a = gen::random_general(24, 3);
  auto r = givens_qr_sameh_kuck_parallel(a, &pool);
  EXPECT_EQ(r.stages, 2 * 24 - 3);
  EXPECT_TRUE(r.r.is_upper_triangular());
}

class ParallelGeTest : public ::testing::TestWithParam<PivotStrategy> {};

TEST_P(ParallelGeTest, BitIdenticalToSequentialDouble) {
  par::ThreadPool pool(4);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    auto a = gen::random_nonsingular(16, seed);
    auto seq = ge_factor(a, GetParam());
    auto par_res = ge_factor_parallel_rows(a, GetParam(), &pool);
    ASSERT_EQ(seq.ok, par_res.ok);
    EXPECT_EQ(max_abs_diff(seq.l, par_res.l), 0.0) << seed;
    EXPECT_EQ(max_abs_diff(seq.u, par_res.u), 0.0) << seed;
    EXPECT_EQ(seq.row_perm, par_res.row_perm);
  }
}

TEST_P(ParallelGeTest, ExactRationalIdentical) {
  par::ThreadPool pool(2);
  auto a = gen::random_nonsingular_exact(7, 3, 5);
  auto seq = ge_factor(a, GetParam());
  auto par_res = ge_factor_parallel_rows(a, GetParam(), &pool);
  EXPECT_EQ(seq.l, par_res.l);
  EXPECT_EQ(seq.u, par_res.u);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ParallelGeTest,
    ::testing::Values(PivotStrategy::kPartial, PivotStrategy::kMinimalSwap,
                      PivotStrategy::kMinimalShift),
    [](const auto& info) { return pivot_strategy_name(info.param); });

TEST(ParallelGe, GemReductionStillSimulatesThroughParallelEngine) {
  // The P-completeness content is about the pivot CHAIN, not the row
  // updates: the parallel-row engine runs the GEM reduction identically.
  par::ThreadPool pool(3);
  Matrix<double> tri{{0, 1, 0}, {0, 0, 1}, {7, 0, 0}};
  auto seq = ge_factor(tri, PivotStrategy::kMinimalShift);
  auto par_res =
      ge_factor_parallel_rows(tri, PivotStrategy::kMinimalShift, &pool);
  EXPECT_EQ(seq.row_perm, par_res.row_perm);
}

TEST(ParallelGe, PlainGeFailureDetectedIdentically) {
  par::ThreadPool pool(2);
  Matrix<double> a{{0, 1}, {1, 0}};
  auto r = ge_factor_parallel_rows(a, PivotStrategy::kNone, &pool);
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace pfact::factor
