// Dense-vs-sparse differential sweep (ctest label `differential`).
//
// The sparse backend's contract is not "close": it is BIT-EQUAL. Every
// guarded driver templated over the storage concept must produce, for the
// same task on the same substrate,
//
//   * the same boolean answer and the same raw decoded entry (bit-equal),
//   * the same pivot trace, event for event (same columns, same contest
//     winners, same actions),
//   * the same RunReport diagnostics (guard ticks, order, excerpt strings),
//
// because the sparse operations mirror the dense field-operation order
// exactly — absent entries participate as explicit field zeros. This sweep
// holds the two backends to that contract over 200 random NANDCVP circuits
// (25 per shard x 8 shards) across the full substrate ladder
// (double / SoftFloat53 / exact rationals), both pivot strategies, the
// bordered nonsingular embedding, the GEP and GQR gadget chains, every
// fault-injection class, and kill-at-every-boundary crash/resume through
// the sparse checkpoint codec.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "core/assembler.h"
#include "matrix/sparse.h"
#include "robustness/checkpoint.h"
#include "robustness/escalation.h"
#include "robustness/guarded_run.h"

namespace pfact::robustness {
namespace {

using circuit::CvpInstance;

constexpr std::size_t kShards = 8;
constexpr std::size_t kCircuitsPerShard = 25;  // 8 x 25 = 200 circuits

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  return x * 0x2545F4914F6CDD1DULL;
}

// Same drawing rule as tests/diff/test_differential.cpp: 2-3 inputs, 4-9
// gates keeps the exact-rational runs fast enough for sanitizer configs.
CvpInstance draw(std::uint64_t seed) {
  const std::size_t num_inputs = 2 + mix(seed) % 2;
  const std::size_t num_gates = 4 + mix(seed + 1) % 6;
  circuit::Circuit c = circuit::random_circuit(num_inputs, num_gates,
                                               static_cast<unsigned>(seed));
  std::vector<bool> in(c.num_inputs());
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = (mix(seed + 2 + i) & 1) != 0;
  }
  return CvpInstance{std::move(c), std::move(in)};
}

bool traces_equal(const factor::PivotTrace& a, const factor::PivotTrace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].column != b[i].column || a[i].pivot_pos != b[i].pivot_pos ||
        a[i].pivot_row != b[i].pivot_row || a[i].action != b[i].action) {
      return false;
    }
  }
  return true;
}

// The full equivalence predicate: one assertion site so every test in this
// file holds the backends to the identical bar.
void expect_reports_equal(const RunReport& dense, const RunReport& sparse,
                          const std::string& what) {
  ASSERT_EQ(dense.diagnostic, sparse.diagnostic)
      << what << "\ndense:  " << dense.to_string()
      << "\nsparse: " << sparse.to_string();
  EXPECT_EQ(dense.algorithm, sparse.algorithm) << what;
  EXPECT_EQ(dense.order, sparse.order) << what;
  EXPECT_EQ(dense.steps_used, sparse.steps_used) << what;
  // Bit-equal: decoded_entry is the raw field entry read at decode time.
  EXPECT_EQ(dense.decoded_entry, sparse.decoded_entry) << what;
  EXPECT_EQ(dense.pivot_excerpt, sparse.pivot_excerpt) << what;
  EXPECT_EQ(dense.detail, sparse.detail) << what;
  EXPECT_EQ(dense.offending_row, sparse.offending_row) << what;
  EXPECT_EQ(dense.offending_col, sparse.offending_col) << what;
  EXPECT_TRUE(traces_equal(dense.trace, sparse.trace)) << what;
  if (dense.ok()) {
    EXPECT_EQ(dense.value, sparse.value) << what;
  }
}

// Runs the task on both backends on one substrate and asserts equivalence;
// returns the dense report for further checks.
RunReport run_both(ReductionTask task, Substrate s, const std::string& what,
                   const GuardLimits& limits = {}, const FaultPlan& fault = {},
                   const CheckpointConfig& ckpt = {}) {
  task.backend = Backend::kDense;
  const RunReport dense = run_on_substrate(task, s, limits, fault, ckpt);
  task.backend = Backend::kSparse;
  const RunReport sparse = run_on_substrate(task, s, limits, fault, ckpt);
  expect_reports_equal(dense, sparse,
                       what + " substrate=" + substrate_name(s));
  return dense;
}

class SparseDifferentialShard : public ::testing::TestWithParam<std::size_t> {
};

// The headline sweep: GEM and GEMS on 200 random circuits, all three
// substrates, dense vs sparse.
TEST_P(SparseDifferentialShard, GemAndGemsAreBackendInvariant) {
  const std::size_t shard = GetParam();
  for (std::size_t k = 0; k < kCircuitsPerShard; ++k) {
    const std::uint64_t seed = 1 + shard * kCircuitsPerShard + k;
    CvpInstance inst = draw(seed * 7919);
    const bool expected = inst.expected();

    for (Algorithm alg : {Algorithm::kGem, Algorithm::kGems}) {
      ReductionTask task;
      task.algorithm = alg;
      task.instance = inst;
      const std::string what =
          "seed=" + std::to_string(seed) + " " + algorithm_name(alg);
      for (Substrate s : {Substrate::kDouble, Substrate::kSoftFloat53,
                          Substrate::kRational}) {
        const RunReport rep = run_both(task, s, what);
        ASSERT_EQ(rep.diagnostic, Diagnostic::kOk) << what;
        EXPECT_EQ(rep.value, expected) << what;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllShards, SparseDifferentialShard,
                         ::testing::Range<std::size_t>(0, kShards));

// The bordered nonsingular embedding doubles the order and decodes through
// a borrowed pivot — a different code path through build_reduction on both
// backends (the sparse one borders in CSR form without a dense detour).
TEST(SparseDifferential, NonsingularEmbeddingIsBackendInvariant) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    CvpInstance inst = draw(seed * 104729);
    ReductionTask task;
    task.algorithm = Algorithm::kGemNonsingular;
    task.instance = inst;
    const std::string what = "seed=" + std::to_string(seed) + " nonsingular";
    for (Substrate s : {Substrate::kDouble, Substrate::kSoftFloat53,
                        Substrate::kRational}) {
      const RunReport rep = run_both(task, s, what);
      ASSERT_EQ(rep.diagnostic, Diagnostic::kOk) << what;
      EXPECT_EQ(rep.value, task.expected()) << what;
    }
  }
}

// GEP partial-pivoting chains and GQR rotation chains: all input pairs, a
// ladder of depths. GQR's kDouble rung runs over long double and pivots by
// rotation (rotate_rows is the sparse op under test); Rational is not in
// GQR's ladder (no field sqrt).
TEST(SparseDifferential, GepAndGqrChainsAreBackendInvariant) {
  for (int u : {1, 2}) {
    for (int w : {1, 2}) {
      for (std::size_t depth = 0; depth <= 5; ++depth) {
        ReductionTask gep;
        gep.algorithm = Algorithm::kGep;
        gep.u = u;
        gep.w = w;
        gep.depth = depth;
        const std::string what = "u=" + std::to_string(u) +
                                 " w=" + std::to_string(w) +
                                 " depth=" + std::to_string(depth);
        for (Substrate s : {Substrate::kDouble, Substrate::kSoftFloat53,
                            Substrate::kRational}) {
          const RunReport rep = run_both(gep, s, "GEP " + what);
          ASSERT_EQ(rep.diagnostic, Diagnostic::kOk) << what;
          EXPECT_EQ(rep.value, gep.expected()) << what;
        }

        ReductionTask gqr;
        gqr.algorithm = Algorithm::kGqr;
        gqr.u = u == 1 ? 1 : -1;  // GQR encodes in {-1, +1}
        gqr.w = w == 1 ? 1 : -1;
        gqr.depth = depth;
        for (Substrate s : {Substrate::kDouble, Substrate::kSoftFloat53}) {
          const RunReport rep = run_both(gqr, s, "GQR " + what);
          ASSERT_EQ(rep.diagnostic, Diagnostic::kOk) << what;
          EXPECT_EQ(rep.value, gqr.expected()) << what;
        }
      }
    }
  }
}

// Fault injection: the injector enumerates corruption sites through the
// storage concept (row-major get/set), so the same plan corrupts the same
// logical entry on both backends — the whole corrupted run must stay
// equivalent, and an injected fault is either detected (non-kOk) or
// harmless (the certified answer is still correct) on BOTH backends.
TEST(SparseDifferential, InjectedFaultsAreBackendInvariant) {
  for (std::uint64_t cseed = 1; cseed <= 4; ++cseed) {
    CvpInstance inst = draw(cseed * 15485863);
    ReductionTask task;
    task.algorithm = Algorithm::kGem;
    task.instance = inst;
    for (FaultClass fc :
         {FaultClass::kBitFlip, FaultClass::kEpsilonNudge,
          FaultClass::kPivotTie, FaultClass::kTruncatedInput}) {
      for (std::uint64_t fseed = 0; fseed < 4; ++fseed) {
        FaultPlan plan;
        plan.fault = fc;
        plan.seed = fseed;
        const std::string what = "circuit=" + std::to_string(cseed) + " " +
                                 plan.describe();
        const RunReport rep =
            run_both(task, Substrate::kDouble, what, {}, plan);
        if (rep.ok()) {
          EXPECT_EQ(rep.value, task.expected())
              << what << " (undetected fault flipped the answer)";
        }
      }
    }
  }
}

// Kill-at-every-boundary crash/resume THROUGH THE SPARSE PATH: snapshots
// are sparse-CSR checkpoint blobs (sparse-double field tag), and a run
// resumed from any boundary must match the uninterrupted sparse run —
// which the sweeps above pin to the dense run. Mirrors
// tests/robustness/test_crash_resume.cpp over Backend::kSparse.
TEST(SparseDifferential, EveryKillPointResumesThroughSparseCheckpoints) {
  constexpr std::size_t kEvery = 2;
  ReductionTask task;
  task.algorithm = Algorithm::kGem;
  task.instance = CvpInstance{circuit::xor_circuit(), {true, false}};
  task.backend = Backend::kSparse;

  const RunReport baseline = run_on_substrate(task, Substrate::kDouble);
  ASSERT_EQ(baseline.diagnostic, Diagnostic::kOk);
  ASSERT_GT(baseline.steps_used, kEvery);

  for (std::size_t kill = kEvery; kill < baseline.steps_used; kill += kEvery) {
    CheckpointStore store;
    CheckpointConfig save;
    save.every = kEvery;
    save.store = &store;
    GuardLimits killer;
    killer.max_steps = kill;
    const RunReport killed =
        run_on_substrate(task, Substrate::kDouble, killer, {}, save);
    ASSERT_EQ(killed.diagnostic, Diagnostic::kStepBudgetExceeded)
        << "kill=" << kill;
    ASSERT_FALSE(store.empty()) << "kill=" << kill;

    // The persisted blob really is a sparse-backend checkpoint: it decodes
    // as SparseMatrix<double> and refuses the dense instantiation.
    const std::string blob = *store.latest();
    StorageCheckpoint<sparse::SparseMatrix<double>> snap;
    ASSERT_EQ(decode_storage_checkpoint(blob, snap), CheckpointStatus::kOk);
    FactorCheckpoint<double> wrong;
    EXPECT_EQ(decode_checkpoint<double>(blob, wrong),
              CheckpointStatus::kMalformed);

    CheckpointConfig resume = save;
    resume.resume = true;
    const RunReport resumed =
        run_on_substrate(task, Substrate::kDouble, {}, {}, resume);
    ASSERT_EQ(resumed.diagnostic, Diagnostic::kOk)
        << "kill=" << kill << ": " << resumed.detail;
    EXPECT_EQ(resumed.value, baseline.value) << "kill=" << kill;
    EXPECT_EQ(resumed.decoded_entry, baseline.decoded_entry)
        << "kill=" << kill;
    EXPECT_TRUE(traces_equal(resumed.trace, baseline.trace))
        << "kill=" << kill;
    EXPECT_EQ(resumed.steps_used, baseline.steps_used - kill)
        << "kill=" << kill;
  }
}

// A dense checkpoint must never seed a sparse resume (and vice versa): the
// field tag is part of the payload, and a mismatch is kCheckpointCorrupt at
// the driver level — the backends' blobs are not interchangeable even
// though their logical state is equal.
TEST(SparseDifferential, CrossBackendCheckpointsAreRefusedOnResume) {
  ReductionTask task;
  task.algorithm = Algorithm::kGem;
  task.instance = CvpInstance{circuit::xor_circuit(), {true, true}};

  for (Backend saver : {Backend::kDense, Backend::kSparse}) {
    task.backend = saver;
    CheckpointStore store;
    CheckpointConfig save;
    save.every = 2;
    save.store = &store;
    GuardLimits killer;
    killer.max_steps = 4;
    const RunReport killed =
        run_on_substrate(task, Substrate::kDouble, killer, {}, save);
    ASSERT_EQ(killed.diagnostic, Diagnostic::kStepBudgetExceeded);
    ASSERT_FALSE(store.empty());

    ReductionTask other = task;
    other.backend = saver == Backend::kDense ? Backend::kSparse
                                             : Backend::kDense;
    CheckpointConfig resume = save;
    resume.resume = true;
    const RunReport rep =
        run_on_substrate(other, Substrate::kDouble, {}, {}, resume);
    EXPECT_EQ(rep.diagnostic, Diagnostic::kCheckpointCorrupt)
        << "saved by " << backend_name(saver);
  }
}

// The reason the backend exists, asserted as an invariant rather than a
// benchmark: on every swept circuit the sparse workspace holds O(rows)
// entries, strictly fewer than the n^2 scalars the dense backend stores.
TEST(SparseDifferential, ReductionMatricesStaySparse) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    CvpInstance inst = draw(seed * 6700417);
    core::SparseGemReduction red = core::build_gem_reduction_sparse(inst);
    const std::size_t n = red.matrix.rows();
    ASSERT_GT(n, 0u) << "seed=" << seed;
    EXPECT_LT(red.matrix.nnz(), n * n) << "seed=" << seed;
    // Block-banded with O(1)-entry gadget rows: nnz is linear in the order,
    // with a small constant (the widest gadget row has 3 entries).
    EXPECT_LE(red.matrix.nnz(), 3 * n) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace pfact::robustness
