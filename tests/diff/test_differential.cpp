// Differential sweep over random NANDCVP circuits (ctest label
// `differential`).
//
// The reductions are only as trustworthy as their arithmetic substrate: the
// paper's decode contract is EXACT (encoded booleans are small integers, all
// pivots are +/-1), so the same instance must decode identically over
//
//   * IEEE double            (the production field),
//   * exact rationals        (the ground-truth field — no rounding at all),
//   * SoftFloat<53>          (the paper's fixed-precision model),
//
// and agree with the direct O(gates) circuit evaluation. Any divergence
// means a rounding path, a pivot-contest tie-break, or a gadget constant is
// leaking into the decoded value.
//
// 200 random circuits are swept (25 per shard x 8 shards, so ctest -j runs
// the shards concurrently even under sanitizers), each checked across the
// 3 fields x {GEM, GEMS}; the GEP gadget chains get the same 3-field
// treatment over all input pairs and a ladder of depths.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "core/gep_gadgets.h"
#include "core/simulator.h"
#include "factor/gaussian.h"
#include "numeric/rational.h"
#include "numeric/softfloat.h"

namespace pfact {
namespace {

using circuit::CvpInstance;
using factor::PivotStrategy;
using numeric::Float53;
using numeric::Rational;

constexpr std::size_t kShards = 8;
constexpr std::size_t kCircuitsPerShard = 25;  // 8 x 25 = 200 circuits

// Deterministic per-circuit parameters: small xorshift so every shard draws
// the same circuits on every platform and run.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  return x * 0x2545F4914F6CDD1DULL;
}

struct DrawnInstance {
  circuit::Circuit circuit;
  std::vector<bool> inputs;
};

// Circuit c: 2-3 inputs, 4-9 gates — reduction orders stay in the tens to
// low hundreds, which keeps the exact-rational eliminations fast enough for
// the sanitizer configs.
DrawnInstance draw(std::uint64_t seed) {
  const std::size_t num_inputs = 2 + mix(seed) % 2;
  const std::size_t num_gates = 4 + mix(seed + 1) % 6;
  circuit::Circuit c = circuit::random_circuit(num_inputs, num_gates,
                                               static_cast<unsigned>(seed));
  std::vector<bool> in(c.num_inputs());
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = (mix(seed + 2 + i) & 1) != 0;
  }
  return {std::move(c), std::move(in)};
}

class DifferentialShard : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DifferentialShard, GemAndGemsDecodeAgreesAcrossFields) {
  const std::size_t shard = GetParam();
  for (std::size_t k = 0; k < kCircuitsPerShard; ++k) {
    const std::uint64_t seed = 1 + shard * kCircuitsPerShard + k;
    DrawnInstance d = draw(seed * 7919);
    CvpInstance inst{d.circuit, d.inputs};
    const bool expected = inst.expected();  // direct evaluation: the oracle

    for (PivotStrategy s :
         {PivotStrategy::kMinimalSwap, PivotStrategy::kMinimalShift}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " strategy=" +
                   factor::pivot_strategy_name(s));
      core::SimulationResult rd = core::simulate_gem<double>(inst, s);
      ASSERT_TRUE(rd.ok);
      EXPECT_EQ(rd.value, expected);

      core::SimulationResult rq = core::simulate_gem<Rational>(inst, s);
      ASSERT_TRUE(rq.ok);
      EXPECT_EQ(rq.value, expected);

      core::SimulationResult rf = core::simulate_gem<Float53>(inst, s);
      ASSERT_TRUE(rf.ok);
      EXPECT_EQ(rf.value, expected);

      // Field-to-field agreement, not just each-vs-oracle: identical decoded
      // entry too (it is an exact small integer in all three fields).
      EXPECT_EQ(rd.decoded_entry, rq.decoded_entry);
      EXPECT_EQ(rd.decoded_entry, rf.decoded_entry);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllShards, DifferentialShard,
                         ::testing::Range<std::size_t>(0, kShards));

// GEP chains: every input pair, depths 0..7, three fields. The pivot
// CONTESTS (which row wins each magnitude comparison) are what encode the
// value under partial pivoting, so the decoded output and the winning
// encoding must match across substrates.
TEST(DifferentialGep, ChainDecodeAgreesAcrossFields) {
  for (int u : {1, 2}) {
    for (int w : {1, 2}) {
      for (std::size_t depth = 0; depth <= 7; ++depth) {
        SCOPED_TRACE("u=" + std::to_string(u) + " w=" + std::to_string(w) +
                     " depth=" + std::to_string(depth));
        core::GepChain chain = core::build_gep_nand_chain(u, w, depth);
        const double expect = (u == 2 && w == 2) ? 1.0 : 2.0;

        const double vd = core::run_gep_chain_t<double>(chain);
        const double vq = core::run_gep_chain_t<Rational>(chain);
        const double vf = core::run_gep_chain_t<Float53>(chain);

        EXPECT_NEAR(vd, expect, 1e-9);
        // The exact-rational run decodes the encoding with NO rounding: it
        // certifies the gadget constants themselves.
        EXPECT_NEAR(vq, expect, 1e-9);
        EXPECT_NEAR(vf, expect, 1e-9);
      }
    }
  }
}

// GEMS over a shifted-input family: the circular-shift strategy must decode
// the same value as GEM's swaps on every drawn circuit — their pivot
// *motions* differ (tested elsewhere via counters), their decode cannot.
TEST(DifferentialGemVsGems, SameDecodeDifferentMotion) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    DrawnInstance d = draw(seed * 104729);
    CvpInstance inst{d.circuit, d.inputs};
    core::SimulationResult swap =
        core::simulate_gem<Rational>(inst, PivotStrategy::kMinimalSwap);
    core::SimulationResult shift =
        core::simulate_gem<Rational>(inst, PivotStrategy::kMinimalShift);
    ASSERT_TRUE(swap.ok);
    ASSERT_TRUE(shift.ok);
    EXPECT_EQ(swap.value, shift.value);
    EXPECT_EQ(swap.value, inst.expected());
  }
}

}  // namespace
}  // namespace pfact
