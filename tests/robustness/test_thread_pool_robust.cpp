// Thread-pool hardening: worker exceptions are never dropped, parallel_for
// never returns while a chunk still runs the caller's closure, cancellation
// is cooperative and prompt, and the whole suite is TSan/ASan-clean (see
// PFACT_SANITIZE in the top-level CMakeLists).
#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace pfact::par {
namespace {

TEST(ParallelForReport, CollectsEveryConcurrentChunkError) {
  // 4 workers, 4 single-iteration chunks, all rendezvous before throwing:
  // fail-fast cannot suppress any of them, so ALL four exceptions must be
  // collected — none silently dropped.
  ThreadPool pool(4);
  std::atomic<int> arrived{0};
  ParallelOutcome out = parallel_for_report(
      0, 4,
      [&](std::size_t i) {
        ++arrived;
        while (arrived.load() < 4) std::this_thread::yield();
        throw std::runtime_error("chunk " + std::to_string(i));
      },
      &pool);
  EXPECT_EQ(out.errors.size(), 4u);
  EXPECT_FALSE(out.ok());
  ASSERT_NE(out.first_error(), nullptr);
  EXPECT_THROW(std::rethrow_exception(out.first_error()), std::runtime_error);
}

TEST(ParallelFor, ThrowsFromMultipleIterationsFirstWinsNoneDropped) {
  // The header claims "first one wins": with several throwing iterations
  // the call must (a) throw, (b) not deadlock, (c) not drop the error even
  // when the throwing iterations race.
  ThreadPool pool(4);
  std::atomic<int> threw{0};
  EXPECT_THROW(parallel_for(
                   0, 256,
                   [&](std::size_t i) {
                     if (i % 16 == 0) {
                       ++threw;
                       throw std::logic_error("x" + std::to_string(i));
                     }
                   },
                   &pool),
               std::logic_error);
  EXPECT_GE(threw.load(), 1);
}

TEST(ParallelFor, DoesNotReturnWhileChunksStillRunTheClosure) {
  // Regression: the seed rethrew the FIRST failed future immediately,
  // abandoning still-running chunks that referenced the (about to be
  // destroyed) loop closure — a use-after-free under contention. Now the
  // call must wait for every chunk before propagating.
  ThreadPool pool(4);
  std::atomic<bool> returned{false};
  std::atomic<int> inside{0};
  EXPECT_THROW(parallel_for(
                   0, 64,
                   [&](std::size_t i) {
                     if (i == 0) throw std::runtime_error("early");
                     ++inside;
                     std::this_thread::sleep_for(std::chrono::milliseconds(1));
                     EXPECT_FALSE(returned.load())
                         << "parallel_for returned with live chunks";
                     --inside;
                   },
                   &pool),
               std::runtime_error);
  returned.store(true);
  EXPECT_EQ(inside.load(), 0);
}

TEST(ParallelFor, FailFastSkipsRemainingIterations) {
  // After a chunk throws, other chunks stop at their next iteration
  // boundary: with many iterations per chunk, strictly fewer than all
  // iterations should run.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  ParallelOutcome out = parallel_for_report(
      0, 100000,
      [&](std::size_t i) {
        if (i == 0) throw std::runtime_error("poison");
        ++ran;
      },
      &pool);
  EXPECT_FALSE(out.ok());
  EXPECT_LT(ran.load(), 100000 - 1);
}

TEST(ParallelFor, CancellationTokenStopsTheSweep) {
  ThreadPool pool(2);
  CancellationToken token;
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for(
                   0, 100000,
                   [&](std::size_t) {
                     if (ran.fetch_add(1) == 10) token.cancel();
                   },
                   &pool, &token),
               OperationCancelled);
  EXPECT_LT(ran.load(), 100000);
}

TEST(ParallelFor, PreCancelledTokenRunsNothing) {
  CancellationToken token;
  token.cancel();
  std::atomic<int> ran{0};
  ParallelOutcome out = parallel_for_report(
      0, 1000, [&](std::size_t) { ++ran; }, nullptr, &token);
  EXPECT_TRUE(out.cancelled);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ParallelFor, NestedCallRunsInlineAndPropagatesExceptions) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  ParallelOutcome out = parallel_for_report(
      0, 8,
      [&](std::size_t i) {
        parallel_for(0, 8, [&](std::size_t) { ++inner_total; }, &pool);
        if (i == 3) throw std::runtime_error("nested thrower");
      },
      &pool);
  EXPECT_FALSE(out.ok());
  EXPECT_GT(inner_total.load(), 0);
}

TEST(ParallelFor, CleanSweepReportsOk) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(513);
  ParallelOutcome out = parallel_for_report(
      0, hits.size(), [&](std::size_t i) { ++hits[i]; }, &pool);
  EXPECT_TRUE(out.ok());
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, StressManyConcurrentSweeps) {
  // Hammer one pool from several threads; TSan validates the locking.
  ThreadPool pool(4);
  std::atomic<long> total{0};
  std::vector<std::thread> drivers;
  for (int t = 0; t < 4; ++t) {
    drivers.emplace_back([&] {
      for (int rep = 0; rep < 50; ++rep) {
        parallel_for(0, 64, [&](std::size_t) { ++total; }, &pool);
      }
    });
  }
  for (auto& d : drivers) d.join();
  EXPECT_EQ(total.load(), 4L * 50L * 64L);
}

TEST(ThreadPool, DestructionDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futs;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      futs.push_back(pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++ran;
      }));
    }
    // Destructor runs here with most tasks still queued.
  }
  // Every accepted task ran (no broken promises, no silent drops).
  for (auto& f : futs) EXPECT_NO_THROW(f.get());
  EXPECT_EQ(ran.load(), 32);
}

// Fail-fast drain: a cancelled sweep must return promptly even when every
// pool thread is wedged under unrelated long-running work — the sweep's
// queued-but-unstarted chunks are drained inline by the cancelling caller,
// so nothing stays stuck behind the blocker and no queued task leaks. This
// is the supervisor-shutdown scenario: cancel during teardown cannot wait
// for (or abandon) work that never started. TSan validates the locking of
// drain_pending against the worker loop.
TEST(ParallelFor, CancellationDrainsQueuedChunksPastABlockedPool) {
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> blocker = release.get_future().share();
  std::atomic<bool> started{false};
  // Occupy the pool's only thread until we explicitly release it; wait for
  // the worker to actually hold it, so the blocker cannot still be queued
  // (and drained inline) when the sweep below cancels.
  std::future<void> occupied = pool.submit([blocker, &started] {
    started.store(true);
    blocker.wait();
  });
  while (!started.load()) std::this_thread::yield();

  CancellationToken token;
  std::atomic<int> ran{0};
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.cancel();
  });
  const auto t0 = std::chrono::steady_clock::now();
  ParallelOutcome out = parallel_for_report(
      0, 1024, [&](std::size_t) { ++ran; }, &pool, &token);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  canceller.join();

  // The sweep came back cancelled while the blocker was STILL holding the
  // pool's only thread: its chunks were drained inline, not waited for.
  EXPECT_TRUE(out.cancelled);
  EXPECT_TRUE(out.errors.empty());
  EXPECT_EQ(ran.load(), 0);  // every chunk saw the token before iterating
  EXPECT_LT(elapsed, std::chrono::seconds(10));

  release.set_value();
  EXPECT_NO_THROW(occupied.get());
}

// drain_pending itself: tasks drained by the caller still resolve their
// futures (run inline), and the drain reports how many it took.
TEST(ThreadPool, DrainPendingRunsQueuedTasksInline) {
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> blocker = release.get_future().share();
  std::atomic<bool> started{false};
  std::future<void> occupied = pool.submit([blocker, &started] {
    started.store(true);
    blocker.wait();
  });
  while (!started.load()) std::this_thread::yield();

  std::atomic<int> ran{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 8; ++i) {
    futs.push_back(pool.submit([&ran] { ++ran; }));
  }
  const std::size_t drained = pool.drain_pending();
  EXPECT_EQ(drained, 8u);
  EXPECT_EQ(ran.load(), 8);
  for (auto& f : futs) EXPECT_NO_THROW(f.get());  // resolved, not leaked

  release.set_value();
  EXPECT_NO_THROW(occupied.get());
}

}  // namespace
}  // namespace pfact::par
