// Checkpoint format tests: lossless per-field round-trips, and the
// rejection guarantee — a truncated blob, a bit flip at ANY byte offset, a
// version skew, or a field-tag mismatch is always refused with a specific
// CheckpointStatus, never parsed into a resumable state.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "factor/pivot_trace.h"
#include "matrix/matrix.h"
#include "numeric/rational.h"
#include "numeric/softfloat.h"
#include "robustness/checkpoint.h"

namespace pfact::robustness {
namespace {

using numeric::Float53;
using numeric::Rational;

TEST(Crc32, MatchesTheIeeeReferenceVector) {
  // The canonical CRC-32/ISO-HDLC check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0x00000000u);
}

template <class T>
FactorCheckpoint<T> sample_checkpoint() {
  FactorCheckpoint<T> c;
  c.algorithm = "GEM";
  c.strategy = 1;
  c.next_step = 2;
  c.matrix = Matrix<T>(3, 4);
  c.matrix(0, 0) = T(1);
  c.matrix(0, 3) = T(-1);
  c.matrix(1, 1) = T(2);
  c.has_perm = true;
  c.perm = Permutation(3);
  c.perm.swap(0, 2);
  factor::PivotEvent e;
  e.column = 0;
  e.pivot_pos = 2;
  e.pivot_row = 2;
  e.action = factor::PivotAction::kSwap;
  c.trace.record(e);
  e.column = 1;
  e.action = factor::PivotAction::kSkip;
  c.trace.record(e);
  return c;
}

template <class T>
void expect_roundtrip(const FactorCheckpoint<T>& c) {
  const std::string blob = encode_checkpoint(c);
  FactorCheckpoint<T> back;
  ASSERT_EQ(decode_checkpoint<T>(blob, back), CheckpointStatus::kOk);
  EXPECT_EQ(back.algorithm, c.algorithm);
  EXPECT_EQ(back.strategy, c.strategy);
  EXPECT_EQ(back.next_step, c.next_step);
  ASSERT_EQ(back.matrix.rows(), c.matrix.rows());
  ASSERT_EQ(back.matrix.cols(), c.matrix.cols());
  for (std::size_t i = 0; i < c.matrix.rows(); ++i)
    for (std::size_t j = 0; j < c.matrix.cols(); ++j)
      EXPECT_TRUE(back.matrix(i, j) == c.matrix(i, j))
          << "entry (" << i << "," << j << ")";
  ASSERT_EQ(back.has_perm, c.has_perm);
  if (c.has_perm) {
    ASSERT_EQ(back.perm.size(), c.perm.size());
    for (std::size_t i = 0; i < c.perm.size(); ++i)
      EXPECT_EQ(back.perm[i], c.perm[i]);
  }
  ASSERT_EQ(back.trace.size(), c.trace.size());
  for (std::size_t i = 0; i < c.trace.size(); ++i) {
    EXPECT_EQ(back.trace[i].column, c.trace[i].column);
    EXPECT_EQ(back.trace[i].pivot_pos, c.trace[i].pivot_pos);
    EXPECT_EQ(back.trace[i].pivot_row, c.trace[i].pivot_row);
    EXPECT_EQ(back.trace[i].action, c.trace[i].action);
  }
}

TEST(CheckpointRoundTrip, DoubleIsBitExact) {
  auto c = sample_checkpoint<double>();
  c.matrix(1, 2) = 0.1;  // not exactly representable: bit pattern must survive
  expect_roundtrip(c);
}

TEST(CheckpointRoundTrip, LongDoubleIsBitExact) {
  auto c = sample_checkpoint<long double>();
  c.matrix(1, 2) = 1.0L / 3.0L;
  c.matrix(2, 0) = -7.25L;
  expect_roundtrip(c);
}

TEST(CheckpointRoundTrip, SoftFloat53IsBitExact) {
  auto c = sample_checkpoint<Float53>();
  c.matrix(1, 2) = Float53(0.1);
  expect_roundtrip(c);
}

TEST(CheckpointRoundTrip, RationalIsExact) {
  auto c = sample_checkpoint<Rational>();
  c.matrix(1, 2) = Rational(22, 7);
  c.matrix(2, 0) = Rational(-5, 3);
  expect_roundtrip(c);
}

TEST(CheckpointRejection, EveryTruncationIsRefused) {
  const std::string blob = encode_checkpoint(sample_checkpoint<double>());
  for (std::size_t len = 0; len < blob.size(); ++len) {
    FactorCheckpoint<double> back;
    const CheckpointStatus s =
        decode_checkpoint<double>(std::string_view(blob.data(), len), back);
    ASSERT_NE(s, CheckpointStatus::kOk) << "accepted at length " << len;
    EXPECT_EQ(s, CheckpointStatus::kTruncated) << "at length " << len;
  }
}

TEST(CheckpointRejection, EveryBitFlipIsRefused) {
  const std::string blob = encode_checkpoint(sample_checkpoint<double>());
  for (std::size_t at = 0; at < blob.size(); ++at) {
    for (int bit : {0, 4, 7}) {
      std::string bad = blob;
      bad[at] = static_cast<char>(bad[at] ^ (1 << bit));
      FactorCheckpoint<double> back;
      ASSERT_NE(decode_checkpoint<double>(bad, back), CheckpointStatus::kOk)
          << "accepted flip of bit " << bit << " at byte " << at;
    }
  }
}

TEST(CheckpointRejection, VersionSkewIsNamed) {
  std::string blob = encode_checkpoint(sample_checkpoint<double>());
  blob[4] = static_cast<char>(kCheckpointVersion + 1);  // version u32, LE
  FactorCheckpoint<double> back;
  EXPECT_EQ(decode_checkpoint<double>(blob, back),
            CheckpointStatus::kBadVersion);
}

TEST(CheckpointRejection, ForeignBytesAreBadMagic) {
  FactorCheckpoint<double> back;
  EXPECT_EQ(decode_checkpoint<double>("this is not a checkpoint blob!", back),
            CheckpointStatus::kBadMagic);
}

TEST(CheckpointRejection, FieldTagMismatchIsMalformed) {
  const std::string blob = encode_checkpoint(sample_checkpoint<double>());
  FactorCheckpoint<Float53> back;
  EXPECT_EQ(decode_checkpoint<Float53>(blob, back),
            CheckpointStatus::kMalformed);
}

TEST(CheckpointRejection, TrailingGarbageIsMalformed) {
  std::string blob = encode_checkpoint(sample_checkpoint<double>());
  // Extend the PAYLOAD (and fix up length+crc) so the reader finishes with
  // bytes left over: self-consistent header, inconsistent content.
  std::string body = blob.substr(kCheckpointHeaderBytes);
  body += '\0';
  detail::ByteWriter header;
  header.put_u32(kCheckpointMagic);
  header.put_u32(kCheckpointVersion);
  header.put_u64(body.size());
  header.put_u32(crc32(body.data(), body.size()));
  FactorCheckpoint<double> back;
  EXPECT_EQ(decode_checkpoint<double>(header.take() + body, back),
            CheckpointStatus::kMalformed);
}

TEST(CheckpointStore, KeepsLatestAndDropsOnDemand) {
  CheckpointStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.latest(), std::nullopt);
  store.put(2, "aa");
  store.put(6, "bbbb");
  store.put(4, "ccc");
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.latest_step(), 6u);
  EXPECT_EQ(*store.latest(), "bbbb");
  EXPECT_EQ(store.total_bytes(), 9u);
  store.drop_latest();
  EXPECT_EQ(store.latest_step(), 4u);
  EXPECT_EQ(*store.latest(), "ccc");
  store.clear();
  EXPECT_TRUE(store.empty());
}

// Regression: drop_latest on an EMPTY store must be a classified no-op
// (false, nothing touched), not UB. The resilient drivers call it
// unconditionally after a kCheckpointCorrupt attempt, and the corrupt blob
// may never have been stored at all (e.g. a worker rejected its seed blob
// before saving anything).
TEST(CheckpointStore, DropLatestOnEmptyStoreIsAClassifiedNoOp) {
  CheckpointStore store;
  EXPECT_FALSE(store.drop_latest());
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.latest(), std::nullopt);

  store.put(3, "xyz");
  EXPECT_TRUE(store.drop_latest());   // the real drop reports true...
  EXPECT_FALSE(store.drop_latest());  // ...and draining past empty is safe
  EXPECT_FALSE(store.drop_latest());
  EXPECT_TRUE(store.empty());
  // The store stays fully usable after the no-op drops.
  store.put(5, "ok");
  EXPECT_EQ(store.latest_step(), 5u);
}

// The envelope check (field-agnostic header+CRC validation, used by the
// serve/ supervisor on pipe frames) agrees with the full decoder on every
// corruption the rejection suite exercises.
TEST(CheckpointEnvelope, AgreesWithTheFullDecoderOnDamage) {
  const std::string good = encode_checkpoint(sample_checkpoint<double>());
  EXPECT_EQ(validate_checkpoint_envelope(good), CheckpointStatus::kOk);
  EXPECT_EQ(validate_checkpoint_envelope(good.substr(0, good.size() / 2)),
            CheckpointStatus::kTruncated);
  EXPECT_EQ(validate_checkpoint_envelope(
                good.substr(0, kCheckpointHeaderBytes - 1)),
            CheckpointStatus::kTruncated);
  EXPECT_EQ(validate_checkpoint_envelope(std::string(64, 'x')),
            CheckpointStatus::kBadMagic);
  std::string flipped = good;
  flipped[good.size() - 1] =
      static_cast<char>(flipped[good.size() - 1] ^ 0x40);
  EXPECT_EQ(validate_checkpoint_envelope(flipped),
            CheckpointStatus::kCrcMismatch);
  EXPECT_EQ(validate_checkpoint_envelope(good + "tail"),
            CheckpointStatus::kMalformed);
}

TEST(CheckpointFiles, RoundTripPreservesBinaryBlobs) {
  const std::string blob = encode_checkpoint(sample_checkpoint<double>());
  const std::string path =
      testing::TempDir() + "/pfact_checkpoint_roundtrip.ckpt";
  ASSERT_TRUE(write_checkpoint_file(path, blob));
  std::string back;
  ASSERT_TRUE(read_checkpoint_file(path, back));
  EXPECT_EQ(back, blob);
  std::remove(path.c_str());
  EXPECT_FALSE(read_checkpoint_file(path, back));
}

}  // namespace
}  // namespace pfact::robustness
