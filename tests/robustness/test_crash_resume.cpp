// Crash/resume equivalence: a run killed at ANY step boundary and resumed
// from its last checkpoint must decode the same boolean — and produce the
// same pivot trace, event for event — as an uninterrupted run. And a
// checkpoint that fails validation (torn, bit-flipped, or from a different
// task) is always rejected as kCheckpointCorrupt, never silently resumed.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "robustness/checkpoint.h"
#include "robustness/escalation.h"
#include "robustness/guarded_run.h"

namespace pfact::robustness {
namespace {

bool traces_equal(const factor::PivotTrace& a, const factor::PivotTrace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].column != b[i].column || a[i].pivot_pos != b[i].pivot_pos ||
        a[i].pivot_row != b[i].pivot_row || a[i].action != b[i].action) {
      return false;
    }
  }
  return true;
}

std::vector<ReductionTask> equivalence_tasks() {
  std::vector<ReductionTask> tasks;
  ReductionTask gem;
  gem.algorithm = Algorithm::kGem;
  gem.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, false}};
  tasks.push_back(gem);
  ReductionTask gems = gem;
  gems.algorithm = Algorithm::kGems;
  gems.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, true}};
  tasks.push_back(gems);
  ReductionTask nonsing = gem;
  nonsing.algorithm = Algorithm::kGemNonsingular;
  nonsing.instance =
      circuit::CvpInstance{circuit::xor_circuit(), {false, true}};
  tasks.push_back(nonsing);
  ReductionTask gep;
  gep.algorithm = Algorithm::kGep;
  gep.u = 2;
  gep.w = 1;
  gep.depth = 1;
  tasks.push_back(gep);
  ReductionTask gqr;
  gqr.algorithm = Algorithm::kGqr;
  gqr.u = 1;
  gqr.w = -1;
  gqr.depth = 1;
  tasks.push_back(gqr);
  return tasks;
}

// Kill at every checkpoint boundary of every task, resume, and compare
// against the uninterrupted baseline.
TEST(CrashResume, EveryKillPointResumesToTheSameDecodeAndTrace) {
  constexpr std::size_t kEvery = 2;
  for (const ReductionTask& task : equivalence_tasks()) {
    const RunReport baseline = run_on_substrate(task, Substrate::kDouble);
    ASSERT_EQ(baseline.diagnostic, Diagnostic::kOk) << task.describe();
    ASSERT_GT(baseline.steps_used, kEvery) << task.describe();

    for (std::size_t kill = kEvery; kill < baseline.steps_used;
         kill += kEvery) {
      CheckpointStore store;
      CheckpointConfig save;
      save.every = kEvery;
      save.store = &store;
      GuardLimits killer;
      killer.max_steps = kill;
      const RunReport killed =
          run_on_substrate(task, Substrate::kDouble, killer, {}, save);
      ASSERT_EQ(killed.diagnostic, Diagnostic::kStepBudgetExceeded)
          << task.describe() << " kill=" << kill;
      // The hook fires BEFORE the boundary step's guard tick, so the state
      // at the kill boundary itself has already been persisted.
      ASSERT_FALSE(store.empty()) << task.describe() << " kill=" << kill;
      ASSERT_EQ(store.latest_step(), kill);

      CheckpointConfig resume = save;
      resume.resume = true;
      const RunReport resumed =
          run_on_substrate(task, Substrate::kDouble, {}, {}, resume);
      ASSERT_EQ(resumed.diagnostic, Diagnostic::kOk)
          << task.describe() << " kill=" << kill << ": " << resumed.detail;
      EXPECT_EQ(resumed.value, baseline.value)
          << task.describe() << " kill=" << kill;
      // Bit-equal decode entry: the resumed arithmetic replays the exact
      // suffix operations on the snapshot state.
      EXPECT_EQ(resumed.decoded_entry, baseline.decoded_entry)
          << task.describe() << " kill=" << kill;
      EXPECT_TRUE(traces_equal(resumed.trace, baseline.trace))
          << task.describe() << " kill=" << kill;
      // The resumed suffix re-executes only the steps after the snapshot.
      EXPECT_EQ(resumed.steps_used, baseline.steps_used - kill)
          << task.describe() << " kill=" << kill;
    }
  }
}

// Resume across a retry loop (new guard each attempt): repeated kills make
// monotone progress through the checkpoint store until the run completes.
TEST(CrashResume, RepeatedKillsAccumulateProgress) {
  ReductionTask task;
  task.algorithm = Algorithm::kGep;
  task.u = 2;
  task.w = 2;
  task.depth = 1;
  const RunReport baseline = run_on_substrate(task, Substrate::kDouble);
  ASSERT_EQ(baseline.diagnostic, Diagnostic::kOk);

  CheckpointStore store;
  CheckpointConfig ckpt;
  ckpt.every = 2;
  ckpt.store = &store;
  ckpt.resume = true;
  GuardLimits killer;
  killer.max_steps = 3;
  RunReport rep;
  std::size_t attempts = 0;
  std::uint64_t last_progress = 0;
  do {
    rep = run_on_substrate(task, Substrate::kDouble, killer, {}, ckpt);
    ASSERT_LT(++attempts, 100u) << "no forward progress under kills";
    if (rep.diagnostic == Diagnostic::kStepBudgetExceeded) {
      EXPECT_GT(store.latest_step(), last_progress);
      last_progress = store.latest_step();
    }
  } while (rep.diagnostic == Diagnostic::kStepBudgetExceeded);
  ASSERT_EQ(rep.diagnostic, Diagnostic::kOk) << rep.detail;
  EXPECT_GT(attempts, 2u);
  EXPECT_EQ(rep.value, baseline.value);
  EXPECT_TRUE(traces_equal(rep.trace, baseline.trace));
}

// A store whose newest blob was corrupted must be rejected with
// kCheckpointCorrupt — whatever the corruption (tear, flip, truncation).
TEST(CrashResume, CorruptedLatestCheckpointIsNeverResumed) {
  ReductionTask task;
  task.algorithm = Algorithm::kGem;
  task.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, true}};

  CheckpointStore pristine;
  CheckpointConfig save;
  save.every = 2;
  save.store = &pristine;
  GuardLimits killer;
  killer.max_steps = 5;
  run_on_substrate(task, Substrate::kDouble, killer, {}, save);
  ASSERT_FALSE(pristine.empty());
  const std::uint64_t step = pristine.latest_step();
  const std::string good = *pristine.latest();

  const auto corruptions = std::vector<std::string>{
      good.substr(0, good.size() / 2),              // torn tail
      good.substr(0, kCheckpointHeaderBytes - 1),   // torn header
      [&] { std::string b = good; b[b.size() / 2] ^= 0x10; return b; }(),
      [&] { std::string b = good; b[6] ^= 0x01; return b; }(),  // length bits
      std::string("garbage"),
  };
  for (std::size_t i = 0; i < corruptions.size(); ++i) {
    CheckpointStore store;
    store.put(step, corruptions[i]);
    CheckpointConfig resume;
    resume.every = 2;
    resume.store = &store;
    resume.resume = true;
    const RunReport rep =
        run_on_substrate(task, Substrate::kDouble, {}, {}, resume);
    EXPECT_EQ(rep.diagnostic, Diagnostic::kCheckpointCorrupt)
        << "corruption " << i << " got " << diagnostic_name(rep.diagnostic);
  }
}

// Shape guard: a perfectly valid checkpoint from a DIFFERENT task must be
// refused too (same CRC, wrong world).
TEST(CrashResume, ForeignTaskCheckpointIsRejected) {
  ReductionTask gems;
  gems.algorithm = Algorithm::kGems;
  gems.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, true}};
  CheckpointStore store;
  CheckpointConfig save;
  save.every = 2;
  save.store = &store;
  GuardLimits killer;
  killer.max_steps = 5;
  run_on_substrate(gems, Substrate::kDouble, killer, {}, save);
  ASSERT_FALSE(store.empty());

  ReductionTask gem = gems;  // same matrix, different algorithm tag
  gem.algorithm = Algorithm::kGem;
  CheckpointConfig resume = save;
  resume.resume = true;
  const RunReport rep =
      run_on_substrate(gem, Substrate::kDouble, {}, {}, resume);
  EXPECT_EQ(rep.diagnostic, Diagnostic::kCheckpointCorrupt);
}

// The injector's kTornWrite corrupts the first snapshot at save time; the
// CRC (or the truncation check) must catch it on the resume attempt.
TEST(CrashResume, TornWriteFaultIsCaughtByValidation) {
  ReductionTask task;
  task.algorithm = Algorithm::kGep;
  task.u = 1;
  task.w = 2;
  task.depth = 1;
  for (std::uint64_t seed : {2ull, 3ull, 10ull, 11ull}) {  // flips and tears
    CheckpointStore store;
    CheckpointConfig save;
    save.every = 2;
    save.store = &store;
    GuardLimits killer;
    killer.max_steps = 3;
    FaultPlan torn;
    torn.fault = FaultClass::kTornWrite;
    torn.seed = seed;
    const RunReport killed =
        run_on_substrate(task, Substrate::kDouble, killer, torn, save);
    ASSERT_EQ(killed.diagnostic, Diagnostic::kStepBudgetExceeded);
    ASSERT_FALSE(store.empty());
    EXPECT_FALSE(killed.injection.empty()) << "seed " << seed;

    CheckpointConfig resume = save;
    resume.resume = true;
    const RunReport rep =
        run_on_substrate(task, Substrate::kDouble, {}, {}, resume);
    EXPECT_EQ(rep.diagnostic, Diagnostic::kCheckpointCorrupt)
        << "seed " << seed << ": " << rep.detail;
  }
}

}  // namespace
}  // namespace pfact::robustness
