// Sparse checkpoint codec tests (ctest label `resilience`): the sparse-CSR
// entry section must satisfy the exact guarantees the dense format proves
// in test_checkpoint.cpp — lossless bit-exact round-trips per field, every
// truncation and every bit flip refused with a specific status — plus the
// sparse-only obligations: the sparse-* field tags are a disjoint namespace
// from the dense tags (no blob crosses backends), and a CRC-VALID payload
// whose CSR arrays violate any invariant (non-monotone row pointers,
// unsorted/duplicate/out-of-range columns, stored zeros, nnz mismatch) is
// kMalformed — a checkpoint that decodes is canonical by construction.
//
// The whole matrix runs per sparse field tag, swept through
// all_sparse_field_tags() — pfact_lint PL011 fails the build if a
// sparse_field_tag specialization is missing from that sweep list.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "factor/pivot_trace.h"
#include "matrix/matrix.h"
#include "matrix/sparse.h"
#include "numeric/rational.h"
#include "numeric/softfloat.h"
#include "robustness/checkpoint.h"

namespace pfact::robustness {
namespace {

using numeric::Float24;
using numeric::Float53;
using numeric::Rational;
using sparse::SparseMatrix;

template <class T>
using SparseCheckpoint = StorageCheckpoint<SparseMatrix<T>>;

template <class T>
SparseCheckpoint<T> sample_checkpoint() {
  SparseCheckpoint<T> c;
  c.algorithm = "GEM";
  c.strategy = 1;
  c.next_step = 2;
  Matrix<T> m(3, 4);
  m(0, 0) = T(1);
  m(0, 3) = T(-1);
  m(1, 1) = T(2);
  // Row 2 stays empty: the codec must round-trip empty rows exactly.
  c.matrix = SparseMatrix<T>::from_dense(m);
  c.has_perm = true;
  c.perm = Permutation(3);
  c.perm.swap(0, 2);
  factor::PivotEvent e;
  e.column = 0;
  e.pivot_pos = 2;
  e.pivot_row = 2;
  e.action = factor::PivotAction::kSwap;
  c.trace.record(e);
  e.column = 1;
  e.action = factor::PivotAction::kSkip;
  c.trace.record(e);
  return c;
}

template <class T>
void expect_roundtrip(const SparseCheckpoint<T>& c) {
  const std::string blob = encode_checkpoint(c);
  SparseCheckpoint<T> back;
  ASSERT_EQ(decode_storage_checkpoint(blob, back), CheckpointStatus::kOk);
  EXPECT_EQ(back.algorithm, c.algorithm);
  EXPECT_EQ(back.strategy, c.strategy);
  EXPECT_EQ(back.next_step, c.next_step);
  // SparseMatrix equality is structural: same rows, same sorted entry
  // lists, same bit patterns — stricter than entrywise value equality.
  EXPECT_TRUE(back.matrix == c.matrix);
  ASSERT_EQ(back.has_perm, c.has_perm);
  if (c.has_perm) {
    ASSERT_EQ(back.perm.size(), c.perm.size());
    for (std::size_t i = 0; i < c.perm.size(); ++i)
      EXPECT_EQ(back.perm[i], c.perm[i]);
  }
  ASSERT_EQ(back.trace.size(), c.trace.size());
  for (std::size_t i = 0; i < c.trace.size(); ++i) {
    EXPECT_EQ(back.trace[i].column, c.trace[i].column);
    EXPECT_EQ(back.trace[i].pivot_pos, c.trace[i].pivot_pos);
    EXPECT_EQ(back.trace[i].pivot_row, c.trace[i].pivot_row);
    EXPECT_EQ(back.trace[i].action, c.trace[i].action);
  }
}

// The full rejection matrix for one field: every truncation, every bit
// flip, version skew, trailing garbage. Templated so the sweep below runs
// it for EVERY sparse_field_tag specialization.
template <class T>
void run_rejection_matrix(const char* tag) {
  SCOPED_TRACE(std::string("tag=") + tag);
  const SparseCheckpoint<T> sample = sample_checkpoint<T>();
  const std::string blob = encode_checkpoint(sample);

  // The blob embeds exactly this backend+field tag.
  EXPECT_NE(blob.find(tag), std::string::npos);
  EXPECT_STREQ(detail::StorageCodec<SparseMatrix<T>>::tag(), tag);

  for (std::size_t len = 0; len < blob.size(); ++len) {
    SparseCheckpoint<T> back;
    const CheckpointStatus s =
        decode_storage_checkpoint(std::string_view(blob.data(), len), back);
    ASSERT_NE(s, CheckpointStatus::kOk) << "accepted at length " << len;
    EXPECT_EQ(s, CheckpointStatus::kTruncated) << "at length " << len;
  }

  for (std::size_t at = 0; at < blob.size(); ++at) {
    for (int bit : {0, 4, 7}) {
      std::string bad = blob;
      bad[at] = static_cast<char>(bad[at] ^ (1 << bit));
      SparseCheckpoint<T> back;
      ASSERT_NE(decode_storage_checkpoint(bad, back), CheckpointStatus::kOk)
          << "accepted flip of bit " << bit << " at byte " << at;
    }
  }

  {
    std::string skew = blob;
    skew[4] = static_cast<char>(kCheckpointVersion + 1);
    SparseCheckpoint<T> back;
    EXPECT_EQ(decode_storage_checkpoint(skew, back),
              CheckpointStatus::kBadVersion);
  }
  {
    SparseCheckpoint<T> back;
    EXPECT_EQ(decode_storage_checkpoint<SparseMatrix<T>>(
                  "this is not a checkpoint blob!", back),
              CheckpointStatus::kBadMagic);
  }
  {
    // Self-consistent header over an extended payload: reader must notice
    // the leftover bytes.
    std::string body = blob.substr(kCheckpointHeaderBytes);
    body += '\0';
    detail::ByteWriter header;
    header.put_u32(kCheckpointMagic);
    header.put_u32(kCheckpointVersion);
    header.put_u64(body.size());
    header.put_u32(crc32(body.data(), body.size()));
    SparseCheckpoint<T> back;
    EXPECT_EQ(decode_storage_checkpoint(header.take() + body, back),
              CheckpointStatus::kMalformed);
  }

  expect_roundtrip(sample);
}

TEST(SparseCheckpointRoundTrip, DoubleIsBitExact) {
  auto c = sample_checkpoint<double>();
  c.matrix.set(1, 2, 0.1);  // not exactly representable: bits must survive
  expect_roundtrip(c);
}

TEST(SparseCheckpointRoundTrip, LongDoubleIsBitExact) {
  auto c = sample_checkpoint<long double>();
  c.matrix.set(1, 2, 1.0L / 3.0L);
  c.matrix.set(2, 0, -7.25L);
  expect_roundtrip(c);
}

TEST(SparseCheckpointRoundTrip, SoftFloatsAreBitExact) {
  auto c53 = sample_checkpoint<Float53>();
  c53.matrix.set(1, 2, Float53(0.1));
  expect_roundtrip(c53);
  auto c24 = sample_checkpoint<Float24>();
  c24.matrix.set(1, 2, Float24(0.5));
  expect_roundtrip(c24);
}

TEST(SparseCheckpointRoundTrip, RationalIsExact) {
  auto c = sample_checkpoint<Rational>();
  c.matrix.set(1, 2, Rational(22, 7));
  c.matrix.set(2, 0, Rational(-5, 3));
  expect_roundtrip(c);
}

TEST(SparseCheckpointRoundTrip, EmptyAndAllZeroMatricesSurvive) {
  SparseCheckpoint<double> c;
  c.algorithm = "GEMS";
  c.matrix = SparseMatrix<double>(4, 4);  // all-zero: nnz == 0
  expect_roundtrip(c);
  c.matrix = SparseMatrix<double>();  // degenerate 0x0
  expect_roundtrip(c);
}

// The sweep: the entire rejection matrix for every registered sparse field
// tag. all_sparse_field_tags() is the list PL011 ratchets — if a tag is in
// it, this test exercised its codec.
TEST(SparseCheckpointRejection, EveryRegisteredTagSurvivesTheFullMatrix) {
  const std::vector<const char*> tags = all_sparse_field_tags();
  ASSERT_EQ(tags.size(), 5u);
  run_rejection_matrix<double>(tags[0]);
  run_rejection_matrix<long double>(tags[1]);
  run_rejection_matrix<Rational>(tags[2]);
  run_rejection_matrix<Float53>(tags[3]);
  run_rejection_matrix<Float24>(tags[4]);
}

TEST(SparseCheckpointRejection, TagsAreTheDenseTagsWithTheSparsePrefix) {
  EXPECT_STREQ(sparse_field_tag<double>(), "sparse-double");
  EXPECT_EQ(std::string("sparse-") + field_tag<double>(),
            sparse_field_tag<double>());
  EXPECT_EQ(std::string("sparse-") + field_tag<long double>(),
            sparse_field_tag<long double>());
  EXPECT_EQ(std::string("sparse-") + field_tag<Rational>(),
            sparse_field_tag<Rational>());
  EXPECT_EQ(std::string("sparse-") + field_tag<Float53>(),
            sparse_field_tag<Float53>());
  EXPECT_EQ(std::string("sparse-") + field_tag<Float24>(),
            sparse_field_tag<Float24>());
}

// Backend crossing is a tag mismatch, in both directions — and so is a
// sparse blob of a different scalar field.
TEST(SparseCheckpointRejection, CrossBackendAndCrossFieldAreMalformed) {
  const std::string sparse_blob = encode_checkpoint(sample_checkpoint<double>());
  FactorCheckpoint<double> dense_back;
  EXPECT_EQ(decode_checkpoint<double>(sparse_blob, dense_back),
            CheckpointStatus::kMalformed);

  FactorCheckpoint<double> dense;
  dense.algorithm = "GEM";
  dense.matrix = Matrix<double>(2, 2);
  dense.matrix(0, 0) = 1.0;
  const std::string dense_blob = encode_checkpoint(dense);
  SparseCheckpoint<double> sparse_back;
  EXPECT_EQ(decode_storage_checkpoint(dense_blob, sparse_back),
            CheckpointStatus::kMalformed);

  SparseCheckpoint<Float53> other_field;
  EXPECT_EQ(decode_storage_checkpoint(sparse_blob, other_field),
            CheckpointStatus::kMalformed);
}

// ---------------------------------------------------------------------------
// CRC-valid structural damage: blobs whose header and CRC verify but whose
// CSR arrays are not canonical. These cannot be produced by the encoder, so
// they are hand-assembled with the same ByteWriter the codec uses.
// ---------------------------------------------------------------------------

struct SparsePayload {
  std::uint64_t rows = 3;
  std::uint64_t cols = 4;
  std::uint64_t nnz = 2;
  std::vector<std::uint64_t> row_ptr = {0, 1, 2, 2};
  std::vector<std::uint64_t> col_idx = {0, 1};
  std::vector<double> values = {1.0, 2.0};
};

std::string assemble_blob(const SparsePayload& p) {
  detail::ByteWriter w;
  w.put_u32(kCheckpointMagic);
  w.put_u32(kCheckpointVersion);
  w.put_u64(0);  // length, patched below
  w.put_u32(0);  // crc, patched below
  w.put_string("GEM");
  w.put_string(sparse_field_tag<double>());
  w.put_u32(0);              // strategy
  w.put_u64(1);              // next_step
  w.put_u64(p.rows);
  w.put_u64(p.cols);
  w.put_u64(p.nnz);
  for (const std::uint64_t r : p.row_ptr) w.put_u64(r);
  for (std::size_t i = 0; i < p.col_idx.size(); ++i) {
    w.put_u64(p.col_idx[i]);
    detail::ScalarCodec<double>::encode(w, p.values[i]);
  }
  w.put_u8(0);   // no permutation
  w.put_u64(0);  // no trace events
  const std::size_t length = w.bytes().size() - kCheckpointHeaderBytes;
  w.patch_u64(8, length);
  w.patch_u32(16, crc32(w.bytes().data() + kCheckpointHeaderBytes, length));
  return w.take();
}

TEST(SparseCheckpointRejection, HandAssembledCanonicalBlobDecodes) {
  // The baseline: the hand-assembled layout matches the real codec, so the
  // structural-damage cases below fail for the structural reason and not an
  // assembly artifact.
  SparseCheckpoint<double> back;
  ASSERT_EQ(decode_storage_checkpoint(assemble_blob(SparsePayload{}), back),
            CheckpointStatus::kOk);
  EXPECT_EQ(back.matrix.rows(), 3u);
  EXPECT_EQ(back.matrix.get(0, 0), 1.0);
  EXPECT_EQ(back.matrix.get(1, 1), 2.0);
}

TEST(SparseCheckpointRejection, CrcValidCsrViolationsAreMalformed) {
  const auto expect_malformed = [](SparsePayload p, const std::string& what) {
    SparseCheckpoint<double> back;
    EXPECT_EQ(decode_storage_checkpoint(assemble_blob(p), back),
              CheckpointStatus::kMalformed)
        << what;
  };
  {
    SparsePayload p;
    p.row_ptr = {0, 2, 1, 2};  // non-monotone row pointers
    expect_malformed(p, "non-monotone row_ptr");
  }
  {
    SparsePayload p;
    p.row_ptr = {0, 1, 2, 1};  // row_ptr.back() != nnz
    expect_malformed(p, "row_ptr tail disagrees with nnz");
  }
  {
    SparsePayload p;
    p.nnz = 3;  // declared nnz exceeds the arrays the row_ptr describes
    expect_malformed(p, "nnz overdeclared");
  }
  {
    SparsePayload p;
    p.col_idx = {0, 4};  // column out of range (cols == 4)
    expect_malformed(p, "column out of range");
  }
  {
    SparsePayload p;
    p.rows = 2;
    p.row_ptr = {0, 2, 2};
    p.col_idx = {1, 0};  // columns not increasing within row 0
    expect_malformed(p, "unsorted columns");
  }
  {
    SparsePayload p;
    p.rows = 2;
    p.row_ptr = {0, 2, 2};
    p.col_idx = {1, 1};  // duplicate column within row 0
    expect_malformed(p, "duplicate column");
  }
  {
    SparsePayload p;
    p.values = {1.0, 0.0};  // stored exact zero
    expect_malformed(p, "stored zero");
  }
}

}  // namespace
}  // namespace pfact::robustness
