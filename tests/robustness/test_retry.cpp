// Retry-policy tests: the classifier's three-way decision table and the
// bit-reproducibility of the jittered exponential backoff schedule.

#include <gtest/gtest.h>

#include <vector>

#include "robustness/retry.h"

namespace pfact::robustness {
namespace {

TEST(Classifier, SuccessIsSuccess) {
  EXPECT_EQ(classify_diagnostic(Diagnostic::kOk), FailureKind::kSuccess);
}

TEST(Classifier, EnvironmentAndPreemptionAreTransient) {
  for (Diagnostic d :
       {Diagnostic::kRoundingAnomaly, Diagnostic::kStepBudgetExceeded,
        Diagnostic::kDeadlineExceeded, Diagnostic::kCancelled,
        Diagnostic::kResourceExhausted, Diagnostic::kCheckpointCorrupt,
        Diagnostic::kWorkerFailure}) {
    EXPECT_EQ(classify_diagnostic(d), FailureKind::kTransient)
        << diagnostic_name(d);
  }
}

TEST(Classifier, NumericFailuresAreDeterministic) {
  for (Diagnostic d :
       {Diagnostic::kDecodeNotBoolean, Diagnostic::kDecodeAmbiguous,
        Diagnostic::kDecodeOutOfTolerance, Diagnostic::kCrossCheckMismatch,
        Diagnostic::kPivotAnomaly, Diagnostic::kNumericOverflow,
        Diagnostic::kNumericNonFinite, Diagnostic::kInvariantViolation}) {
    EXPECT_EQ(classify_diagnostic(d), FailureKind::kDeterministic)
        << diagnostic_name(d);
  }
}

TEST(Classifier, BadInputAndBugsAreFatal) {
  EXPECT_EQ(classify_diagnostic(Diagnostic::kBadInput), FailureKind::kFatal);
  EXPECT_EQ(classify_diagnostic(Diagnostic::kInternalError),
            FailureKind::kFatal);
}

TEST(Backoff, SameSeedReplaysBitIdentically) {
  RetryPolicy a;
  a.jitter_seed = 42;
  RetryPolicy b = a;
  for (std::size_t k = 1; k <= 16; ++k) {
    EXPECT_EQ(a.backoff(k).count(), b.backoff(k).count()) << "attempt " << k;
  }
}

TEST(Backoff, DifferentSeedsDiverge) {
  RetryPolicy a;
  a.jitter_seed = 1;
  RetryPolicy b;
  b.jitter_seed = 2;
  bool any_differ = false;
  for (std::size_t k = 1; k <= 16 && !any_differ; ++k) {
    any_differ = a.backoff(k).count() != b.backoff(k).count();
  }
  EXPECT_TRUE(any_differ);
}

TEST(Backoff, StaysInTheJitteredExponentialEnvelope) {
  RetryPolicy p;
  p.base_delay = std::chrono::milliseconds{10};
  p.max_delay = std::chrono::milliseconds{1000};
  p.jitter_seed = 7;
  for (std::size_t k = 1; k <= 20; ++k) {
    const long long raw =
        std::min<long long>(1000, 10LL << std::min<std::size_t>(k - 1, 20));
    const long long d = p.backoff(k).count();
    EXPECT_GE(d, raw / 2) << "attempt " << k;
    EXPECT_LE(d, raw) << "attempt " << k;
  }
}

TEST(Backoff, HugeAttemptIndexSaturatesAtTheCap) {
  RetryPolicy p;
  p.base_delay = std::chrono::milliseconds{10};
  p.max_delay = std::chrono::milliseconds{500};
  const long long d = p.backoff(1000).count();
  EXPECT_GE(d, 250);
  EXPECT_LE(d, 500);
}

TEST(Backoff, ZeroBaseDisablesSleeping) {
  RetryPolicy p;
  p.base_delay = std::chrono::milliseconds{0};
  for (std::size_t k = 1; k <= 4; ++k) {
    EXPECT_EQ(p.backoff(k).count(), 0);
  }
}

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(1, 1), mix64(1, 1));
  EXPECT_NE(mix64(1, 1), mix64(1, 2));
  EXPECT_NE(mix64(1, 1), mix64(2, 1));
}

}  // namespace
}  // namespace pfact::robustness
