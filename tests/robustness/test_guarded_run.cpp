// Guarded execution: clean runs come back kOk with a certified value;
// budget, deadline, substrate, and input violations come back with the
// matching diagnostic — and the guarded drivers never throw.
#include "robustness/guarded_run.h"

#include <gtest/gtest.h>

#include <chrono>

#include "circuit/builders.h"
#include "numeric/bigint.h"
#include "numeric/softfloat.h"

namespace pfact::robustness {
namespace {

using numeric::Float24;
using numeric::Float53;
using numeric::ScopedSoftFloatRounding;
using numeric::SoftFloatRounding;

std::vector<bool> bits_of(unsigned mask, std::size_t n) {
  std::vector<bool> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = (mask >> i) & 1;
  return out;
}

TEST(GuardedGem, CleanRunsAreOkAndCertified) {
  for (const circuit::Circuit& c :
       {circuit::xor_circuit(), circuit::majority3_circuit(),
        circuit::adder_carry_circuit(2)}) {
    for (unsigned m = 0; m < (1u << c.num_inputs()); ++m) {
      circuit::CvpInstance inst{c, bits_of(m, c.num_inputs())};
      for (auto strat : {factor::PivotStrategy::kMinimalSwap,
                         factor::PivotStrategy::kMinimalShift}) {
        RunReport rep = guarded_simulate_gem<double>(inst, strat);
        ASSERT_TRUE(rep.ok()) << rep.to_string();
        EXPECT_EQ(rep.value, inst.expected()) << rep.to_string();
        EXPECT_GT(rep.order, 0u);
        EXPECT_FALSE(rep.to_string().empty());
      }
    }
  }
}

TEST(GuardedGem, CleanRunsOverSoftFloatAreOk) {
  circuit::CvpInstance inst{circuit::xor_circuit(), {true, false}};
  RunReport rep = guarded_simulate_gem<Float53>(
      inst, factor::PivotStrategy::kMinimalSwap);
  ASSERT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_TRUE(rep.value);
}

TEST(GuardedGemNonsingular, CleanRunsAreOkAndCertified) {
  const circuit::Circuit c = circuit::majority3_circuit();
  for (unsigned m = 0; m < 8; ++m) {
    circuit::CvpInstance inst{c, bits_of(m, 3)};
    RunReport rep = guarded_simulate_gem_nonsingular<double>(inst);
    ASSERT_TRUE(rep.ok()) << rep.to_string();
    EXPECT_EQ(rep.value, inst.expected()) << rep.to_string();
  }
}

TEST(GuardedGep, CleanChainsAreOkForAllCases) {
  for (int u : {1, 2}) {
    for (int w : {1, 2}) {
      for (std::size_t depth : {0u, 2u, 5u}) {
        RunReport rep = guarded_run_gep_chain(u, w, depth);
        ASSERT_TRUE(rep.ok()) << rep.to_string();
        EXPECT_EQ(rep.value, !(u == 2 && w == 2)) << rep.to_string();
      }
    }
  }
}

TEST(GuardedGqr, CleanChainsAreOkForAllCases) {
  for (int a : {1, -1}) {
    for (int b : {1, -1}) {
      for (std::size_t depth : {0u, 2u, 5u}) {
        RunReport rep = guarded_run_gqr_chain<long double>(a, b, depth);
        ASSERT_TRUE(rep.ok()) << rep.to_string();
        EXPECT_EQ(rep.value, !(a == 1 && b == 1)) << rep.to_string();
      }
    }
  }
}

TEST(GuardedRun, StepBudgetSurfacesAsDiagnostic) {
  circuit::CvpInstance inst{circuit::adder_carry_circuit(3),
                            bits_of(0x2a, 6)};
  GuardLimits limits;
  limits.max_steps = 3;  // far fewer than the reduction order
  RunReport rep = guarded_simulate_gem<double>(
      inst, factor::PivotStrategy::kMinimalSwap, limits);
  EXPECT_EQ(rep.diagnostic, Diagnostic::kStepBudgetExceeded)
      << rep.to_string();
  EXPECT_NE(rep.detail.find("budget"), std::string::npos);
}

TEST(GuardedRun, ExpiredDeadlineSurfacesAsDiagnostic) {
  circuit::CvpInstance inst{circuit::xor_circuit(), {true, true}};
  GuardLimits limits;
  limits.timeout = std::chrono::milliseconds(-1);  // already expired
  RunReport rep = guarded_simulate_gem<double>(
      inst, factor::PivotStrategy::kMinimalShift, limits);
  EXPECT_EQ(rep.diagnostic, Diagnostic::kDeadlineExceeded) << rep.to_string();
}

TEST(GuardedRun, OversizedInstanceIsRefusedNotRun) {
  circuit::CvpInstance inst{circuit::adder_carry_circuit(4),
                            bits_of(0, 8)};
  GuardLimits limits;
  limits.max_order = 4;
  RunReport rep = guarded_simulate_gem<double>(
      inst, factor::PivotStrategy::kMinimalSwap, limits);
  EXPECT_EQ(rep.diagnostic, Diagnostic::kBadInput) << rep.to_string();
  EXPECT_EQ(rep.steps_used, 0u);  // nothing was executed
}

TEST(GuardedRun, ArityMismatchIsBadInput) {
  circuit::CvpInstance inst{circuit::xor_circuit(), {true}};  // one bit short
  RunReport rep = guarded_simulate_gem<double>(
      inst, factor::PivotStrategy::kMinimalSwap);
  EXPECT_EQ(rep.diagnostic, Diagnostic::kBadInput) << rep.to_string();
}

TEST(GuardedRun, InvalidEncodedChainInputsAreBadInput) {
  EXPECT_EQ(guarded_run_gep_chain(0, 2, 1).diagnostic, Diagnostic::kBadInput);
  EXPECT_EQ(guarded_run_gep_chain(3, 1, 1).diagnostic, Diagnostic::kBadInput);
  EXPECT_EQ((guarded_run_gqr_chain<long double>(0, 1, 1).diagnostic),
            Diagnostic::kBadInput);
  EXPECT_EQ((guarded_run_gqr_chain<long double>(2, -1, 1).diagnostic),
            Diagnostic::kBadInput);
}

// --- substrate probe -------------------------------------------------------

TEST(RoundingProbe, AcceptsNearestEvenAndRejectsFlippedModes) {
  EXPECT_TRUE(detail::rounding_environment_ok<Float24>());
  EXPECT_TRUE(detail::rounding_environment_ok<Float53>());
  EXPECT_TRUE(detail::rounding_environment_ok<double>());
  {
    ScopedSoftFloatRounding flip(SoftFloatRounding::kTowardZero);
    EXPECT_FALSE(detail::rounding_environment_ok<Float24>());
    EXPECT_FALSE(detail::rounding_environment_ok<Float53>());
  }
  {
    ScopedSoftFloatRounding flip(SoftFloatRounding::kAwayFromZero);
    EXPECT_FALSE(detail::rounding_environment_ok<Float24>());
  }
  // RAII restored the default mode.
  EXPECT_TRUE(detail::rounding_environment_ok<Float24>());
}

// --- numeric growth guard --------------------------------------------------

TEST(BigIntGuard, GrowthBeyondBitLimitThrowsOverflow) {
  numeric::BigInt x = numeric::BigInt::pow(numeric::BigInt(2), 100);
  {
    numeric::BigInt::BitLimitScope scope(128);
    EXPECT_NO_THROW(x * numeric::BigInt(3));        // 102 bits: fine
    EXPECT_THROW(x * x, std::overflow_error);       // 201 bits: guarded
  }
  // Scope restored: unlimited again.
  EXPECT_NO_THROW(x * x);
}

TEST(BigIntGuard, GuardedRunClassifiesOverflowErrors) {
  // The classifier maps std::overflow_error to kNumericOverflow; exercise
  // it through the public entry point.
  RunReport rep;
  detail::apply_exception(
      rep, std::make_exception_ptr(std::overflow_error("BigInt: limit")));
  EXPECT_EQ(rep.diagnostic, Diagnostic::kNumericOverflow);
  detail::apply_exception(
      rep, std::make_exception_ptr(std::domain_error("SoftFloat: NaN")));
  EXPECT_EQ(rep.diagnostic, Diagnostic::kNumericNonFinite);
  detail::apply_exception(
      rep, std::make_exception_ptr(factor::GuardAbort(
               factor::GuardAbort::Kind::kInvariant, 7, "bad pivot")));
  EXPECT_EQ(rep.diagnostic, Diagnostic::kInvariantViolation);
  EXPECT_EQ(rep.offending_col, 7u);
}

TEST(RunReport, ToStringNamesDiagnosticAndAlgorithm) {
  circuit::CvpInstance inst{circuit::xor_circuit(), {false, true}};
  RunReport rep = guarded_simulate_gem<double>(
      inst, factor::PivotStrategy::kMinimalSwap);
  std::string s = rep.to_string();
  EXPECT_NE(s.find("GEM"), std::string::npos);
  EXPECT_NE(s.find("ok"), std::string::npos);
}

}  // namespace
}  // namespace pfact::robustness
