// Supervised driver tests: the retry/escalate loop's terminal behaviors,
// ladder climbs that end certified on an exact substrate, deterministic
// replay of whole attempt logs, and the injectable-clock deadline path
// (no wall-clock sleeps anywhere in this file).

#include <gtest/gtest.h>

#include <chrono>
#include <exception>
#include <new>
#include <vector>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "obs/counters.h"
#include "robustness/resilient_run.h"

namespace pfact::robustness {
namespace {

constexpr bool kObsOn = PFACT_OBS_ENABLED != 0;

ReductionTask gep_task(int u, int w, std::size_t depth = 1) {
  ReductionTask t;
  t.algorithm = Algorithm::kGep;
  t.u = u;
  t.w = w;
  t.depth = depth;
  return t;
}

TEST(ResilientRun, CleanTaskCertifiesOnTheFirstRung) {
  ReductionTask task;
  task.algorithm = Algorithm::kGem;
  task.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, false}};
  const ResilientReport rep = resilient_run(task);
  ASSERT_TRUE(rep.certified) << rep.to_string();
  EXPECT_EQ(rep.value, task.expected());
  EXPECT_EQ(rep.certified_by, Substrate::kDouble);
  EXPECT_EQ(rep.attempts.size(), 1u);
  EXPECT_EQ(rep.escalations, 0u);
  EXPECT_EQ(rep.outcome, FailureKind::kSuccess);
}

TEST(ResilientRun, FatalInputFailsImmediatelyWithoutRetries) {
  const ResilientReport rep = resilient_run(gep_task(0, 1));  // 0 not in {1,2}
  EXPECT_FALSE(rep.certified);
  EXPECT_EQ(rep.outcome, FailureKind::kFatal);
  EXPECT_EQ(rep.final_report.diagnostic, Diagnostic::kBadInput);
  EXPECT_EQ(rep.attempts.size(), 1u);
  EXPECT_EQ(rep.escalations, 0u);
}

// A persistent rounding-mode flip on a ladder that starts on SoftFloat:
// the probe reports kRoundingAnomaly (transient), retries exhaust, and the
// climb to exact rationals certifies the value — rounding modes cannot
// touch exact arithmetic.
TEST(ResilientRun, RoundingFlipIsEscapedByEscalatingToRational) {
  ReductionTask task = gep_task(2, 2);
  ResilientOptions opt;
  opt.ladder = {Substrate::kSoftFloat53, Substrate::kRational};
  opt.retry.max_attempts = 2;
  FaultPlan flip;
  flip.fault = FaultClass::kRoundingFlip;
  opt.fault_for_attempt = [flip](std::size_t) { return flip; };

  const ResilientReport rep = resilient_run(task, opt);
  ASSERT_TRUE(rep.certified) << rep.to_string();
  EXPECT_EQ(rep.value, task.expected());
  EXPECT_EQ(rep.certified_by, Substrate::kRational);
  EXPECT_EQ(rep.escalations, 1u);
  ASSERT_EQ(rep.attempts.size(), 3u);  // 2 SoftFloat failures + 1 Rational
  EXPECT_EQ(rep.attempts[0].diagnostic, Diagnostic::kRoundingAnomaly);
  EXPECT_EQ(rep.attempts[0].kind, FailureKind::kTransient);
  EXPECT_EQ(rep.attempts[1].substrate, Substrate::kSoftFloat53);
  EXPECT_EQ(rep.attempts[2].substrate, Substrate::kRational);
  EXPECT_EQ(rep.attempts[2].diagnostic, Diagnostic::kOk);
}

TEST(ResilientRun, GqrLadderExcludesRational) {
  for (Substrate s : default_ladder(Algorithm::kGqr)) {
    EXPECT_NE(s, Substrate::kRational);
  }
  EXPECT_FALSE(substrate_supported(Algorithm::kGqr, Substrate::kRational));
  // And the dispatch refuses rather than instantiating sqrt over rationals.
  const RunReport rep =
      run_on_substrate(gep_task(1, 1), Substrate::kRational);
  EXPECT_EQ(rep.diagnostic, Diagnostic::kOk);  // GEP supports rationals
  ReductionTask gqr;
  gqr.algorithm = Algorithm::kGqr;
  gqr.u = 1;
  gqr.w = 1;
  gqr.depth = 1;
  EXPECT_EQ(run_on_substrate(gqr, Substrate::kRational).diagnostic,
            Diagnostic::kBadInput);
}

// Preemption storm: every attempt is killed by its step budget; the
// checkpoint/resume path accumulates progress until the task certifies.
TEST(ResilientRun, PreemptionStormCompletesViaCheckpointResume) {
  ReductionTask task = gep_task(2, 1);
  const ResilientReport baseline = resilient_run(task);
  ASSERT_TRUE(baseline.certified);

  ResilientOptions opt;
  opt.checkpoint_every = 2;
  opt.limits.max_steps = 3;
  opt.retry.max_attempts = 64;
  obs::ScopedCounters counters;
  const ResilientReport rep = resilient_run(task, opt);
  ASSERT_TRUE(rep.certified) << rep.to_string();
  EXPECT_EQ(rep.value, baseline.value);
  EXPECT_GT(rep.attempts.size(), 2u);
  std::size_t resumed = 0;
  for (const AttemptRecord& a : rep.attempts) resumed += a.resumed ? 1 : 0;
  EXPECT_GT(resumed, 0u);
  // The full trace of the final (resumed) attempt equals the uninterrupted
  // trace, event for event.
  ASSERT_EQ(rep.final_report.trace.size(),
            baseline.final_report.trace.size());
  for (std::size_t i = 0; i < rep.final_report.trace.size(); ++i) {
    EXPECT_EQ(rep.final_report.trace[i].column,
              baseline.final_report.trace[i].column);
    EXPECT_EQ(rep.final_report.trace[i].pivot_row,
              baseline.final_report.trace[i].pivot_row);
    EXPECT_EQ(rep.final_report.trace[i].action,
              baseline.final_report.trace[i].action);
  }
  if (kObsOn) {
    const obs::CounterDelta d = counters.delta();
    EXPECT_EQ(d[obs::Counter::kRetryAttempts], rep.attempts.size());
    EXPECT_GT(d[obs::Counter::kCheckpointSaves], 0u);
    EXPECT_GT(d[obs::Counter::kCheckpointBytes],
              d[obs::Counter::kCheckpointSaves]);  // blobs are > 1 byte each
    EXPECT_GT(d[obs::Counter::kCheckpointResumes], 0u);
  }
}

// The whole supervised log — diagnostics, kinds, backoff delays, resume
// flags — replays bit-identically from the same options.
TEST(ResilientRun, AttemptLogIsBitReproducible) {
  ReductionTask task = gep_task(1, 2);
  ResilientOptions opt;
  opt.ladder = {Substrate::kSoftFloat53, Substrate::kRational};
  opt.retry.max_attempts = 3;
  opt.retry.jitter_seed = 99;
  FaultPlan flip;
  flip.fault = FaultClass::kRoundingFlip;
  opt.fault_for_attempt = [flip](std::size_t) { return flip; };

  const ResilientReport a = resilient_run(task, opt);
  const ResilientReport b = resilient_run(task, opt);
  ASSERT_EQ(a.attempts.size(), b.attempts.size());
  for (std::size_t i = 0; i < a.attempts.size(); ++i) {
    EXPECT_EQ(a.attempts[i].substrate, b.attempts[i].substrate);
    EXPECT_EQ(a.attempts[i].attempt, b.attempts[i].attempt);
    EXPECT_EQ(a.attempts[i].diagnostic, b.attempts[i].diagnostic);
    EXPECT_EQ(a.attempts[i].kind, b.attempts[i].kind);
    EXPECT_EQ(a.attempts[i].backoff.count(), b.attempts[i].backoff.count());
    EXPECT_EQ(a.attempts[i].resumed, b.attempts[i].resumed);
  }
  EXPECT_EQ(a.certified, b.certified);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.escalations, b.escalations);
  // Retry backoffs (recorded, not slept) follow the seeded policy exactly.
  ASSERT_GE(a.attempts.size(), 2u);
  EXPECT_EQ(a.attempts[1].backoff.count(), opt.retry.backoff(1).count());
}

// The sleeper receives exactly the recorded backoffs (and nothing on first
// attempts); no sleeper means no sleeping at all.
TEST(ResilientRun, SleeperSeesExactlyTheRecordedBackoffs) {
  ReductionTask task = gep_task(2, 2);
  ResilientOptions opt;
  opt.ladder = {Substrate::kSoftFloat53, Substrate::kRational};
  opt.retry.max_attempts = 3;
  opt.retry.jitter_seed = 5;
  FaultPlan flip;
  flip.fault = FaultClass::kRoundingFlip;
  opt.fault_for_attempt = [flip](std::size_t) { return flip; };
  std::vector<long long> slept;
  opt.sleeper = [&slept](std::chrono::milliseconds d) {
    slept.push_back(d.count());
  };
  const ResilientReport rep = resilient_run(task, opt);
  std::vector<long long> recorded;
  for (const AttemptRecord& a : rep.attempts) {
    if (a.backoff.count() > 0) recorded.push_back(a.backoff.count());
  }
  EXPECT_EQ(slept, recorded);
  EXPECT_FALSE(slept.empty());
}

// --- injectable-clock deadline path -----------------------------------------

// A fake steady clock that jumps 60ms per observation: the 50ms timeout
// expires on the very first guard tick, deterministically, with zero
// wall-clock sleeping.
std::chrono::steady_clock::time_point fake_now;  // NOLINT
std::chrono::steady_clock::time_point fake_clock() {
  fake_now += std::chrono::milliseconds(60);
  return fake_now;
}

TEST(ResilientRun, DeadlineFiresDeterministicallyUnderAFakeClock) {
  fake_now = std::chrono::steady_clock::time_point{};
  ReductionTask task;
  task.algorithm = Algorithm::kGem;
  task.instance = circuit::CvpInstance{circuit::xor_circuit(), {true, true}};
  GuardLimits limits;
  limits.timeout = std::chrono::milliseconds(50);
  limits.clock = &fake_clock;
  const RunReport rep =
      run_on_substrate(task, Substrate::kDouble, limits);
  EXPECT_EQ(rep.diagnostic, Diagnostic::kDeadlineExceeded);
  EXPECT_EQ(classify_diagnostic(rep.diagnostic), FailureKind::kTransient);
}

TEST(ResilientRun, DeadlineExhaustionEndsAsTerminalTransient) {
  fake_now = std::chrono::steady_clock::time_point{};
  ReductionTask task = gep_task(1, 1);
  ResilientOptions opt;
  opt.limits.timeout = std::chrono::milliseconds(50);
  opt.limits.clock = &fake_clock;
  opt.retry.max_attempts = 2;
  const ResilientReport rep = resilient_run(task, opt);
  EXPECT_FALSE(rep.certified);
  EXPECT_EQ(rep.outcome, FailureKind::kTransient);
  EXPECT_EQ(rep.final_report.diagnostic, Diagnostic::kDeadlineExceeded);
  // Two attempts per rung, full ladder climbed, every attempt preempted.
  EXPECT_EQ(rep.attempts.size(), 2u * default_ladder(task.algorithm).size());
  EXPECT_EQ(rep.escalations, default_ladder(task.algorithm).size() - 1);
}

// --- resource exhaustion ----------------------------------------------------

TEST(ResilientRun, BadAllocClassifiesAsTransientResourceExhaustion) {
  RunReport rep;
  detail::apply_exception(rep, std::make_exception_ptr(std::bad_alloc{}));
  EXPECT_EQ(rep.diagnostic, Diagnostic::kResourceExhausted);
  EXPECT_EQ(classify_diagnostic(rep.diagnostic), FailureKind::kTransient);
}

}  // namespace
}  // namespace pfact::robustness
