// Fault-injection sweep: fault classes x algorithms (GEM, GEMS,
// GEM/nonsingular, GEP, GQR).
//
// The contract under test is DETECTION, not correction: for every injected
// fault the guarded run must either
//   (a) return a non-kOk diagnostic (the fault was detected), or
//   (b) return kOk with the CORRECT value (the fault was harmless by
//       construction — e.g. it landed on an entry that is dead for this
//       input case).
// A kOk report with a wrong value — a silently-wrong decode — is the one
// outcome that must never happen, and the sweep asserts it never does.
// Separately, every (fault class, algorithm) cell of the sweep must detect
// at least one injection, so each class is demonstrably *detectable* on
// each algorithm, and instance-level faults (truncated input, rounding
// flip) must be detected on every single run.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "circuit/builders.h"
#include "numeric/softfloat.h"
#include "robustness/guarded_run.h"

namespace pfact::robustness {
namespace {

using numeric::Float53;

constexpr std::uint64_t kSweepSeeds = 12;

struct CellStats {
  int runs = 0;
  int detected = 0;
  int harmless = 0;
};

// Runs one guarded execution of `algo` under `plan` and folds the outcome
// into `stats`, failing the test on any silently-wrong decode.
void check_report(const RunReport& rep, bool expected, CellStats& stats) {
  ++stats.runs;
  if (rep.ok()) {
    // The one forbidden outcome: a clean report with a wrong value.
    ASSERT_EQ(rep.value, expected)
        << "SILENTLY WRONG DECODE: " << rep.to_string();
    ++stats.harmless;
  } else {
    ++stats.detected;
  }
}

circuit::CvpInstance sweep_instance() {
  // XOR(1, 0) = true: small enough that the sweep stays fast, rich enough
  // that every fault class has live targets.
  return {circuit::xor_circuit(), {true, false}};
}

TEST(FaultSweep, MatrixFaultsAcrossAllAlgorithmsNeverSilentlyWrong) {
  const std::vector<FaultClass> matrix_faults = {
      FaultClass::kBitFlip, FaultClass::kEpsilonNudge, FaultClass::kPivotTie};
  std::map<std::string, CellStats> cells;
  const circuit::CvpInstance inst = sweep_instance();
  const bool expected = inst.expected();

  for (FaultClass fault : matrix_faults) {
    for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
      FaultPlan plan{fault, seed};
      const std::string key = fault_class_name(fault);
      check_report(guarded_simulate_gem<Float53>(
                       inst, factor::PivotStrategy::kMinimalSwap, {}, plan),
                   expected, cells[key + "/GEM"]);
      check_report(guarded_simulate_gem<Float53>(
                       inst, factor::PivotStrategy::kMinimalShift, {}, plan),
                   expected, cells[key + "/GEMS"]);
      check_report(guarded_simulate_gem_nonsingular<Float53>(inst, {}, plan),
                   expected, cells[key + "/GEM-nonsingular"]);
      check_report(guarded_run_gep_chain(2, 1, 2, {}, plan),
                   /*expected NAND(2,1)=*/true, cells[key + "/GEP"]);
      check_report(guarded_run_gqr_chain<long double>(1, 1, 2, {}, plan),
                   /*expected NAND(+1,+1)=*/false, cells[key + "/GQR"]);
    }
  }
  // Every (fault class, algorithm) cell must have caught something: the
  // class is detectable on that algorithm, not just survivable.
  for (const auto& [key, stats] : cells) {
    EXPECT_GT(stats.detected, 0)
        << key << ": no injection detected in " << stats.runs << " runs";
    EXPECT_EQ(stats.runs, static_cast<int>(kSweepSeeds)) << key;
  }
}

TEST(FaultSweep, TruncatedInputIsRefusedOnEveryRun) {
  const circuit::CvpInstance inst = sweep_instance();
  for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    FaultPlan plan{FaultClass::kTruncatedInput, seed};
    EXPECT_EQ(guarded_simulate_gem<Float53>(
                  inst, factor::PivotStrategy::kMinimalSwap, {}, plan)
                  .diagnostic,
              Diagnostic::kBadInput);
    EXPECT_EQ(guarded_simulate_gem<Float53>(
                  inst, factor::PivotStrategy::kMinimalShift, {}, plan)
                  .diagnostic,
              Diagnostic::kBadInput);
    EXPECT_EQ(guarded_simulate_gem_nonsingular<Float53>(inst, {}, plan)
                  .diagnostic,
              Diagnostic::kBadInput);
    EXPECT_EQ(guarded_run_gep_chain(2, 2, 1, {}, plan).diagnostic,
              Diagnostic::kBadInput);
    EXPECT_EQ((guarded_run_gqr_chain<long double>(-1, 1, 1, {}, plan)
                   .diagnostic),
              Diagnostic::kBadInput);
  }
}

TEST(FaultSweep, RoundingFlipIsDetectedOnEverySoftFloatRun) {
  const circuit::CvpInstance inst = sweep_instance();
  for (auto mode : {numeric::SoftFloatRounding::kTowardZero,
                    numeric::SoftFloatRounding::kAwayFromZero}) {
    FaultPlan plan{FaultClass::kRoundingFlip, 0,
                   mode};
    EXPECT_EQ(guarded_simulate_gem<Float53>(
                  inst, factor::PivotStrategy::kMinimalSwap, {}, plan)
                  .diagnostic,
              Diagnostic::kRoundingAnomaly);
    EXPECT_EQ(guarded_simulate_gem<numeric::Float24>(
                  inst, factor::PivotStrategy::kMinimalShift, {}, plan)
                  .diagnostic,
              Diagnostic::kRoundingAnomaly);
    EXPECT_EQ(guarded_simulate_gem_nonsingular<Float53>(inst, {}, plan)
                  .diagnostic,
              Diagnostic::kRoundingAnomaly);
    EXPECT_EQ((guarded_run_gqr_chain<Float53>(1, -1, 1, {}, plan).diagnostic),
              Diagnostic::kRoundingAnomaly);
  }
  // On a native-double substrate the flipped mode cannot bite (the process
  // never touches the FPU control word): the run must stay correct.
  FaultPlan plan{FaultClass::kRoundingFlip, 0};
  RunReport rep = guarded_simulate_gem<double>(
      inst, factor::PivotStrategy::kMinimalSwap, {}, plan);
  ASSERT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_EQ(rep.value, inst.expected());
}

TEST(FaultSweep, EveryNonzeroEntryBitFlipIsDetectedOrHarmless) {
  // Exhaustive, not sampled: flip EVERY nonzero entry of A_C in turn.
  const circuit::CvpInstance inst = sweep_instance();
  const bool expected = inst.expected();
  core::GemReduction red = core::build_gem_reduction(inst);
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < red.matrix.rows(); ++i)
    for (std::size_t j = 0; j < red.matrix.cols(); ++j)
      if (red.matrix(i, j) != 0.0) ++nnz;
  ASSERT_GT(nnz, 0u);
  CellStats stats;
  for (std::uint64_t seed = 0; seed < nnz; ++seed) {
    FaultPlan plan{FaultClass::kBitFlip, seed};
    check_report(guarded_simulate_gem<double>(
                     inst, factor::PivotStrategy::kMinimalSwap, {}, plan),
                 expected, stats);
  }
  EXPECT_EQ(stats.runs, static_cast<int>(nnz));
  EXPECT_GT(stats.detected, 0);
}

TEST(FaultSweep, InjectionIsDeterministicallyReplayable) {
  const circuit::CvpInstance inst = sweep_instance();
  FaultPlan plan{FaultClass::kEpsilonNudge, 5};
  RunReport a = guarded_simulate_gem<double>(
      inst, factor::PivotStrategy::kMinimalShift, {}, plan);
  RunReport b = guarded_simulate_gem<double>(
      inst, factor::PivotStrategy::kMinimalShift, {}, plan);
  EXPECT_EQ(a.diagnostic, b.diagnostic);
  EXPECT_EQ(a.injection, b.injection);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_EQ(a.decoded_entry, b.decoded_entry);
  EXPECT_FALSE(a.injection.empty());
}

TEST(FaultSweep, PivotTieOnGepPerturbsTheTrace) {
  // GEP is the algorithm whose *trace* is the decoded object (Thm 3.4);
  // a forced magnitude tie must never flip the decode silently.
  CellStats stats;
  for (std::uint64_t seed = 0; seed < 2 * kSweepSeeds; ++seed) {
    FaultPlan plan{FaultClass::kPivotTie, seed};
    RunReport rep = guarded_run_gep_chain(1, 2, 3, {}, plan);
    check_report(rep, /*expected NAND(1,2)=*/true, stats);
  }
  EXPECT_GT(stats.detected, 0);
}

TEST(FaultSweep, ReportsCarryInjectionAndTraceContext) {
  const circuit::CvpInstance inst = sweep_instance();
  FaultPlan plan{FaultClass::kBitFlip, 1};
  RunReport rep = guarded_simulate_gem<double>(
      inst, factor::PivotStrategy::kMinimalSwap, {}, plan);
  EXPECT_NE(rep.injection.find("bit-flip"), std::string::npos);
  if (!rep.ok()) {
    EXPECT_FALSE(rep.detail.empty()) << rep.to_string();
  }
}

}  // namespace
}  // namespace pfact::robustness
