#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace pfact::par {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ParallelFor, CoversExactRange) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool ran = false;
  parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, NonZeroBase) {
  std::atomic<long> sum{0};
  parallel_for(10, 20, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 145);  // 10+..+19
}

TEST(ParallelFor, ExceptionSurfaceable) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::logic_error("x");
                   }),
      std::logic_error);
}

TEST(ThreadPool, GlobalPoolExists) {
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

}  // namespace
}  // namespace pfact::par
