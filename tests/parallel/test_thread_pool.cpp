#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace pfact::par {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ParallelFor, CoversExactRange) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool ran = false;
  parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, NonZeroBase) {
  std::atomic<long> sum{0};
  parallel_for(10, 20, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 145);  // 10+..+19
}

TEST(ParallelFor, ExceptionSurfaceable) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::logic_error("x");
                   }),
      std::logic_error);
}

TEST(ThreadPool, GlobalPoolExists) {
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ParallelFor, MultipleThrowingIterationsStillThrowExactlyOnce) {
  // Several iterations throw concurrently; exactly one exception must
  // surface from the call (the rest are collected, not leaked or dropped)
  // and the call must not terminate() or deadlock.
  ThreadPool pool(4);
  std::atomic<int> threw{0};
  try {
    parallel_for(
        0, 400,
        [&](std::size_t i) {
          if (i % 25 == 0) {
            ++threw;
            throw std::runtime_error("iteration " + std::to_string(i));
          }
        },
        &pool);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("iteration"), std::string::npos);
  }
  EXPECT_GE(threw.load(), 1);
}

TEST(ParallelFor, ReportVariantAggregatesInsteadOfThrowing) {
  ThreadPool pool(2);
  ParallelOutcome out = parallel_for_report(
      0, 64,
      [](std::size_t i) {
        if (i == 1) throw std::runtime_error("only one");
      },
      &pool);
  EXPECT_FALSE(out.ok());
  EXPECT_FALSE(out.cancelled);
  EXPECT_GE(out.errors.size(), 1u);
}

TEST(ParallelFor, ThrowDoesNotPoisonThePoolForLaterSweeps) {
  // After an exceptional sweep the same pool must serve clean sweeps —
  // no stuck workers, no lingering fail-fast state.
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(
                   0, 32,
                   [](std::size_t i) {
                     if (i == 7) throw std::runtime_error("once");
                   },
                   &pool),
               std::runtime_error);
  std::atomic<int> ran{0};
  parallel_for(0, 32, [&](std::size_t) { ++ran; }, &pool);
  EXPECT_EQ(ran.load(), 32);
}

}  // namespace
}  // namespace pfact::par
