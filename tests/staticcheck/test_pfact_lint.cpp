// The pfact_lint contract, pinned end to end: the clean fixture (and the
// repo itself) pass with exit 0, and every seeded-violation fixture fails
// with a nonzero exit naming its precise rule ID. Fixtures are overlays:
// each violation directory holds only the file(s) that differ from base/,
// and the test materializes base + overlay into a temp tree before linting
// it — so a fixture documents exactly the drift it seeds.
//
// The binary is exercised as a subprocess (not a linked library) because
// the exit status IS part of the contract: CI gates on it.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

namespace {

namespace fs = std::filesystem;

struct LintResult {
  int exit_code = -1;
  std::string output;
};

LintResult run_lint(const std::string& args) {
  const std::string cmd = std::string(PFACT_LINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  LintResult res;
  if (pipe == nullptr) return res;
  std::array<char, 4096> buf;
  while (std::fgets(buf.data(), buf.size(), pipe) != nullptr) {
    res.output += buf.data();
  }
  const int status = pclose(pipe);
  res.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return res;
}

// Materializes base/ plus the named overlay into a fresh temp tree and
// returns its path.
fs::path materialize(const std::string& overlay) {
  const fs::path fixtures(PFACT_LINT_FIXTURES);
  const fs::path dst =
      fs::path(testing::TempDir()) / ("pfact_lint_" + overlay);
  fs::remove_all(dst);
  fs::copy(fixtures / "base", dst, fs::copy_options::recursive);
  if (!overlay.empty() && overlay != "base") {
    fs::copy(fixtures / overlay, dst,
             fs::copy_options::recursive | fs::copy_options::overwrite_existing);
  }
  return dst;
}

void expect_violation(const std::string& overlay, const std::string& rule,
                      const std::string& symbol) {
  const fs::path root = materialize(overlay);
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find(rule), std::string::npos)
      << "expected " << rule << " in:\n" << res.output;
  EXPECT_NE(res.output.find(symbol), std::string::npos)
      << "expected mention of " << symbol << " in:\n" << res.output;
}

TEST(PfactLint, CleanFixturePasses) {
  const fs::path root = materialize("base");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("clean"), std::string::npos) << res.output;
}

// The acceptance bar for every commit: HEAD itself lints clean.
TEST(PfactLint, RepositoryHeadIsClean) {
  const LintResult res = run_lint(std::string("--root ") + PFACT_REPO_ROOT);
  EXPECT_EQ(res.exit_code, 0) << res.output;
}

TEST(PfactLint, UnnamedCounterFailsPL001) {
  expect_violation("unnamed_counter", "PL001", "Counter::kRowUpdates");
}

TEST(PfactLint, NameCollisionFailsPL002) {
  expect_violation("name_collision", "PL002", "elim-steps");
}

TEST(PfactLint, UnhandledFaultClassFailsPL004) {
  expect_violation("unhandled_fault_class", "PL004",
                   "FaultClass::kRoundingFlip");
}

TEST(PfactLint, UnclassifiedDiagnosticFailsPL005) {
  expect_violation("unclassified_diagnostic", "PL005",
                   "Diagnostic::kMystery");
}

TEST(PfactLint, DuplicateCheckpointTagFailsPL006) {
  const fs::path root = materialize("duplicate_checkpoint_tag");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("PL006"), std::string::npos) << res.output;
  // The duplicate fires alone: the fixture manifest matches the duplicated
  // tag multiset, so no version/manifest rule piggybacks on the finding.
  EXPECT_EQ(res.output.find("PL007"), std::string::npos) << res.output;
  EXPECT_EQ(res.output.find("PL008"), std::string::npos) << res.output;
}

TEST(PfactLint, StaleVersionFailsPL007) {
  expect_violation("stale_version", "PL007", "long-double");
}

TEST(PfactLint, OutdatedManifestFailsPL008) {
  expect_violation("outdated_manifest", "PL008", "--update-manifest");
}

TEST(PfactLint, UnmappedWorkerExitFailsPL009) {
  expect_violation("unmapped_worker_exit", "PL009", "WorkerExit::kMystery");
}

TEST(PfactLint, UnsweptWorkerExitFailsPL009) {
  const fs::path root = materialize("unswept_worker_exit");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("PL009"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("all_worker_exits"), std::string::npos)
      << res.output;
  // kMystery IS named and diagnosed in this overlay, so the sweep gap is
  // the only finding — the rule localizes, not shotgun-blasts.
  EXPECT_EQ(res.output.find("diagnose_worker_exit()"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("1 finding(s)"), std::string::npos) << res.output;
}

TEST(PfactLint, UnmappedAdmissionFailsPL010) {
  const fs::path root = materialize("unmapped_admission");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("PL010"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("Admission::kShedShutdown"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("diagnose_admission"), std::string::npos)
      << res.output;
  // kShedShutdown IS named and swept in this overlay: one finding only.
  EXPECT_NE(res.output.find("1 finding(s)"), std::string::npos) << res.output;
}

TEST(PfactLint, UnsweptCacheProbeFailsPL010) {
  const fs::path root = materialize("unswept_cache_probe");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("PL010"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("CacheProbe::kEnvelopeRejected"),
            std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("all_cache_probes"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("1 finding(s)"), std::string::npos) << res.output;
}

TEST(PfactLint, UnsweptSparseTagFailsPL011) {
  const fs::path root = materialize("unswept_sparse_tag");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("PL011"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("sparse_field_tag<float>"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("all_sparse_field_tags"), std::string::npos)
      << res.output;
  // The tag is lawfully named and the tag set matches the manifest, so the
  // sweep gap is the only finding.
  EXPECT_NE(res.output.find("1 finding(s)"), std::string::npos) << res.output;
}

TEST(PfactLint, OrphanSparseTagFailsPL011) {
  const fs::path root = materialize("orphan_sparse_tag");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("PL011"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("sparse_field_tag<int>"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("field_tag<int>"), std::string::npos)
      << res.output;
  // The fixture manifest includes sparse-int and the orphan is swept, so
  // the missing dense counterpart is the only finding.
  EXPECT_NE(res.output.find("1 finding(s)"), std::string::npos) << res.output;
}

TEST(PfactLint, UncountedFrontendStatusFailsPL012) {
  const fs::path root = materialize("uncounted_frontend_status");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("PL012"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("FrontendStatus::kDraining"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("frontend_status_counter"), std::string::npos)
      << res.output;
  // kDraining IS named, diagnosed, and swept in this overlay: the missing
  // counter is the only finding.
  EXPECT_NE(res.output.find("1 finding(s)"), std::string::npos) << res.output;
}

TEST(PfactLint, UnsweptFrontendStatusFailsPL012) {
  const fs::path root = materialize("unswept_frontend_status");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("PL012"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("FrontendStatus::kConnReset"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("all_frontend_statuses"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("1 finding(s)"), std::string::npos) << res.output;
}

TEST(PfactLint, UnnamedHistogramFailsPL003) {
  expect_violation("unnamed_histogram", "PL003", "Histogram::kSpread");
}

TEST(PfactLint, CodecWidthMismatchFailsPL013) {
  const fs::path root = materialize("codec_width_mismatch");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("PL013"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("encode_frame/decode_frame"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("encoder puts 'u64' but decoder reads 'u32'"),
            std::string::npos)
      << res.output;
  // The rest of the pair mirrors, so the width flip is the only finding.
  EXPECT_NE(res.output.find("1 finding(s)"), std::string::npos) << res.output;
}

TEST(PfactLint, CodecUnpairedFieldFailsPL013) {
  const fs::path root = materialize("codec_unpaired_field");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("PL013"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("unpaired trailing 'u64'"), std::string::npos)
      << res.output;
  // The extra field sits BEFORE the payload trailer, so the trailer idiom
  // must not excuse it.
  EXPECT_NE(res.output.find("1 finding(s)"), std::string::npos) << res.output;
}

TEST(PfactLint, UndeadlinedReadFailsPL014) {
  const fs::path root = materialize("undeadlined_read");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("PL014"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("raw ::read()"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("drain_fd()"), std::string::npos) << res.output;
  // The located form carries the file so the problem matcher can anchor it.
  EXPECT_NE(res.output.find("src/serve/poller.cpp:"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("1 finding(s)"), std::string::npos) << res.output;
}

TEST(PfactLint, StaleWaiverFailsPL014) {
  const fs::path root = materialize("stale_waiver");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("PL014"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("stale waiver: read_exact()"), std::string::npos)
      << res.output;
  // write_frame still contains its ::write, so its waiver stays quiet.
  EXPECT_NE(res.output.find("1 finding(s)"), std::string::npos) << res.output;
}

TEST(PfactLint, UnsafeSignalHandlerFailsPL015) {
  const fs::path root = materialize("unsafe_signal_handler");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("PL015"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("on_usr1"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("fprintf"), std::string::npos) << res.output;
  // The base fixture's own handler (atomic store + ::write self-pipe) must
  // stay clean, so the seeded handler is the only finding.
  EXPECT_NE(res.output.find("1 finding(s)"), std::string::npos) << res.output;
}

TEST(PfactLint, LayeringBackEdgeFailsPL016) {
  const fs::path root = materialize("layering_back_edge");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("PL016"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("serve/frontend.h"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("rank 6"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("1 finding(s)"), std::string::npos) << res.output;
}

TEST(PfactLint, DeadCounterFailsPL017) {
  const fs::path root = materialize("dead_counter");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("PL017"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("Counter::kOrphanEvents"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("never incremented"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("not asserted or recorded"), std::string::npos)
      << res.output;
  // Fully registered (enum + name case): PL001/PL002 stay quiet and the
  // dead counter is the only finding, located in the enum header.
  EXPECT_NE(res.output.find("src/obs/counters.h:"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("1 finding(s)"), std::string::npos) << res.output;
}

TEST(PfactLint, AdhocRetrySleepFailsPL018) {
  const fs::path root = materialize("adhoc_retry_sleep");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("PL018"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("usleep() in redial()"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("RetryPolicy::backoff"), std::string::npos)
      << res.output;
  // usleep is not a PL014 syscall and the file includes nothing project-
  // side, so the ad-hoc pacing is the only finding.
  EXPECT_NE(res.output.find("1 finding(s)"), std::string::npos) << res.output;
}

TEST(PfactLint, StaleBackoffWaiverFailsPL018) {
  const fs::path root = materialize("stale_backoff_waiver");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("PL018"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("stale waiver: run_attempt()"), std::string::npos)
      << res.output;
  // The fixture client.cpp has neither raw syscalls nor the PL014-waived
  // functions, so the stale PL018 entry is the only finding.
  EXPECT_NE(res.output.find("1 finding(s)"), std::string::npos) << res.output;
}

TEST(PfactLint, UnsweptShardStatusFailsPL019) {
  const fs::path root = materialize("unswept_shard_status");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("PL019"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("ShardStatus::kUnresponsive"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("all_shard_statuses"), std::string::npos)
      << res.output;
  // kUnresponsive IS named, diagnosed, and counted in this overlay, and the
  // RouterStatus taxonomy is untouched: the sweep gap is the only finding.
  EXPECT_NE(res.output.find("1 finding(s)"), std::string::npos) << res.output;
}

TEST(PfactLint, UncountedRouterStatusFailsPL019) {
  const fs::path root = materialize("uncounted_router_status");
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 1) << res.output;
  EXPECT_NE(res.output.find("PL019"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("RouterStatus::kBrownoutShed"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("router_status_counter"), std::string::npos)
      << res.output;
  // kBrownoutShed IS named, diagnosed, and swept in this overlay: the
  // missing counter is the only finding.
  EXPECT_NE(res.output.find("1 finding(s)"), std::string::npos) << res.output;
}

// --update-manifest is the sanctioned way out of PL007/PL008: after a
// legitimate schema change plus version bump, regenerating the manifest
// returns the tree to clean.
TEST(PfactLint, UpdateManifestRepairsOutdatedManifest) {
  const fs::path root = materialize("outdated_manifest");
  const LintResult regen =
      run_lint("--root " + root.string() + " --update-manifest");
  EXPECT_EQ(regen.exit_code, 0) << regen.output;
  const LintResult res = run_lint("--root " + root.string());
  EXPECT_EQ(res.exit_code, 0) << res.output;
}

TEST(PfactLint, MissingRootIsAUsageError) {
  const LintResult res = run_lint("");
  EXPECT_EQ(res.exit_code, 2) << res.output;
}

TEST(PfactLint, UnreadableTreeIsAnIoError) {
  const LintResult res =
      run_lint("--root " + (fs::path(testing::TempDir()) /
                            "pfact_lint_does_not_exist").string());
  EXPECT_EQ(res.exit_code, 2) << res.output;
}

}  // namespace
