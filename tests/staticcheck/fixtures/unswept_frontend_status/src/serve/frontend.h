#pragma once
// Seeded violation: kConnReset is named, diagnosed, and counted, but was
// dropped from the all_frontend_statuses() sweep — the rejection matrix and
// --net soak could never certify its coverage. PL012 must flag exactly this.

#include <vector>

namespace pfact::serve {

enum class FrontendStatus {
  kAccepted,
  kMalformedFrame,
  kDeadline,
  kConnReset,
  kOverloaded,
  kDraining,
};

inline const char* frontend_status_name(FrontendStatus s) {
  switch (s) {
    case FrontendStatus::kAccepted: return "accepted";
    case FrontendStatus::kMalformedFrame: return "malformed-frame";
    case FrontendStatus::kDeadline: return "deadline";
    case FrontendStatus::kConnReset: return "conn-reset";
    case FrontendStatus::kOverloaded: return "overloaded";
    case FrontendStatus::kDraining: return "draining";
  }
  return "?";
}

inline const std::vector<FrontendStatus>& all_frontend_statuses() {
  static const std::vector<FrontendStatus> statuses = {
      FrontendStatus::kAccepted,   FrontendStatus::kMalformedFrame,
      FrontendStatus::kDeadline,   FrontendStatus::kOverloaded,
      FrontendStatus::kDraining};
  return statuses;
}

inline robustness::Diagnostic diagnose_frontend_status(FrontendStatus s) {
  switch (s) {
    case FrontendStatus::kAccepted: return robustness::Diagnostic::kOk;
    case FrontendStatus::kMalformedFrame:
      return robustness::Diagnostic::kBadInput;
    case FrontendStatus::kDeadline:
      return robustness::Diagnostic::kDeadlineExceeded;
    case FrontendStatus::kConnReset:
      return robustness::Diagnostic::kConnReset;
    case FrontendStatus::kOverloaded:
      return robustness::Diagnostic::kOverloaded;
    case FrontendStatus::kDraining:
      return robustness::Diagnostic::kCancelled;
  }
  return robustness::Diagnostic::kInternalError;
}

inline obs::Counter frontend_status_counter(FrontendStatus s) {
  switch (s) {
    case FrontendStatus::kAccepted: return obs::Counter::kFrontendAccepted;
    case FrontendStatus::kMalformedFrame:
      return obs::Counter::kFrontendMalformed;
    case FrontendStatus::kDeadline:
      return obs::Counter::kFrontendDeadlineEvictions;
    case FrontendStatus::kConnReset:
      return obs::Counter::kFrontendConnResets;
    case FrontendStatus::kOverloaded:
      return obs::Counter::kFrontendOverloadSheds;
    case FrontendStatus::kDraining:
      return obs::Counter::kFrontendDrainRefusals;
  }
  return obs::Counter::kFrontendMalformed;
}

}  // namespace pfact::serve
