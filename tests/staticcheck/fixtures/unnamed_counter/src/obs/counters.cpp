#include "obs/counters.h"

// Seeded violation for PL001: Counter::kRowUpdates exists in the enum but
// its name-switch case was "forgotten" — the classic drift this rule exists
// to catch (snapshots would silently emit no JSON key for it).

namespace pfact::obs {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kElimSteps: return "elim-steps";
    case Counter::kCount_: break;
  }
  return "?";
}

const char* histogram_name(Histogram h) {
  switch (h) {
    case Histogram::kPivotMoveDistance: return "pivot-move-distance";
    case Histogram::kCount_: break;
  }
  return "?";
}

}  // namespace pfact::obs
