// Seeded PL018 drift: run_attempt() carries a chaos-pacing waiver in the
// PL018 allowlist, but the sleeps that waiver excused are gone — the stale
// entry must be reported so waivers die with the code they excused.

namespace pfact::serve {

int run_attempt(int attempt) {
  return attempt * 2;
}

}  // namespace pfact::serve
