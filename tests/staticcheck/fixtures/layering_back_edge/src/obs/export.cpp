// Seeded violation for PL016: the observability layer (rank 0) reaching up
// into the serving layer (rank 6) — a back edge in the module DAG.
#include "obs/counters.h"
#include "serve/frontend.h"

namespace pfact::obs {

std::size_t snapshot_active_conns(const serve::Frontend& fe) {
  return fe.active_connections();
}

}  // namespace pfact::obs
