#include "obs/counters.h"

namespace pfact::obs {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kElimSteps: return "elim-steps";
    case Counter::kRowUpdates: return "row-updates";
    case Counter::kOrphanEvents: return "orphan-events";
    case Counter::kCount_: break;
  }
  return "?";
}

const char* histogram_name(Histogram h) {
  switch (h) {
    case Histogram::kPivotMoveDistance: return "pivot-move-distance";
    case Histogram::kCount_: break;
  }
  return "?";
}

}  // namespace pfact::obs
