#pragma once
// Seeded violation for PL017: Counter::kOrphanEvents is fully registered
// (enum + name case, so PL001/PL002 stay quiet) but nothing in src/ or
// bench/ ever bumps it and no test or bench source observes it.

namespace pfact::obs {

enum class Counter : std::size_t {
  kElimSteps,
  kRowUpdates,
  kOrphanEvents,
  kCount_,
};

enum class Histogram : std::size_t {
  kPivotMoveDistance,
  kCount_,
};

}  // namespace pfact::obs
