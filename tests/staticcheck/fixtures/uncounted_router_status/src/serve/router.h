#pragma once
// Seeded PL019 drift: kBrownoutShed is named, diagnosed, and swept, but has
// no case in router_status_counter() — a brownout shedding load would be
// invisible to the counter snapshot monitoring reads.

#include <vector>

namespace pfact::serve {

enum class RouterStatus {
  kRouted,
  kFailedOver,
  kBrownoutShed,
  kAllShardsDown,
};

inline const char* router_status_name(RouterStatus s) {
  switch (s) {
    case RouterStatus::kRouted: return "routed";
    case RouterStatus::kFailedOver: return "failed-over";
    case RouterStatus::kBrownoutShed: return "brownout-shed";
    case RouterStatus::kAllShardsDown: return "all-shards-down";
  }
  return "?";
}

inline const std::vector<RouterStatus>& all_router_statuses() {
  static const std::vector<RouterStatus> statuses = {
      RouterStatus::kRouted, RouterStatus::kFailedOver,
      RouterStatus::kBrownoutShed, RouterStatus::kAllShardsDown};
  return statuses;
}

inline robustness::Diagnostic diagnose_router_status(RouterStatus s) {
  switch (s) {
    case RouterStatus::kRouted: return robustness::Diagnostic::kOk;
    case RouterStatus::kFailedOver: return robustness::Diagnostic::kOk;
    case RouterStatus::kBrownoutShed:
      return robustness::Diagnostic::kOverloaded;
    case RouterStatus::kAllShardsDown:
      return robustness::Diagnostic::kConnReset;
  }
  return robustness::Diagnostic::kInternalError;
}

inline obs::Counter router_status_counter(RouterStatus s) {
  switch (s) {
    case RouterStatus::kRouted: return obs::Counter::kRouterRoutes;
    case RouterStatus::kFailedOver: return obs::Counter::kRouterFailovers;
    case RouterStatus::kAllShardsDown:
      return obs::Counter::kRouterAllShardsDown;
  }
  return obs::Counter::kRouterAllShardsDown;
}

}  // namespace pfact::serve
