// Seeded violation for PL014's stale-waiver leg: read_exact was rewritten
// to copy out of an in-memory buffer — it no longer contains any raw
// blocking syscall, so its allowlist entry must be retired with it.
#include "serve/queue.h"

namespace pfact::serve {

void encode_frame(ByteWriter& w, const Frame& f) {
  w.put_u32(kFrameMagic);
  if (f.rows.empty()) {
    w.put_string(std::string());
  } else {
    w.put_string(join_rows(f.rows));
  }
  w.put_u64(f.steps);
  for (const Event& e : f.events) {
    w.put_u64(e.column);
    w.put_u32(e.action);
  }
  w.put_bytes(f.payload.data(), f.payload.size());
}

bool decode_frame(ByteReader& r, Frame& out) {
  if (r.get_u32() != kFrameMagic) return false;
  out.rows = split_rows(r.get_string());
  out.steps = r.get_u64();
  for (std::uint64_t i = 0; i < out.steps; ++i) {
    Event e;
    e.column = r.get_u64();
    if (!to_action(r.get_u32(), e.action)) return false;
    out.events.push_back(e);
  }
  out.payload = r.rest();
  return true;
}

bool read_exact(Buffer& in, char* dst, std::size_t n) {
  if (in.size() < n) return false;
  std::memcpy(dst, in.data(), n);
  in.consume(n);
  return true;
}

bool write_frame(int fd, const std::string& frame) {
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t put = ::write(fd, frame.data() + off, frame.size() - off);
    if (put < 0 && errno == EINTR) continue;
    if (put <= 0) return false;
    off += static_cast<std::size_t>(put);
  }
  return true;
}

}  // namespace pfact::serve
