#pragma once
// Seeded violation for PL005: Diagnostic::kMystery was added to the taxonomy
// (and is printable) but the retry classifier was never taught about it, so
// the resilient driver could not decide retry vs escalate vs fail for it.

namespace pfact::robustness {

enum class Diagnostic {
  kOk,
  kBadInput,
  kNumericOverflow,
  kMystery,
};

inline const char* diagnostic_name(Diagnostic d) {
  switch (d) {
    case Diagnostic::kOk: return "ok";
    case Diagnostic::kBadInput: return "bad-input";
    case Diagnostic::kNumericOverflow: return "numeric-overflow";
    case Diagnostic::kMystery: return "mystery";
  }
  return "?";
}

}  // namespace pfact::robustness
