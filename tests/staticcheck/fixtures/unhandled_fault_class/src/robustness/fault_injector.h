#pragma once
// Seeded violation for PL004: FaultClass::kRoundingFlip was added to the
// taxonomy (and is printable) but never added to the all_fault_classes()
// sweep list — so the robustness suite would never inject it.

namespace pfact::robustness {

enum class FaultClass {
  kNone,
  kBitFlip,
  kPivotTie,
  kRoundingFlip,
};

inline const char* fault_class_name(FaultClass f) {
  switch (f) {
    case FaultClass::kNone: return "none";
    case FaultClass::kBitFlip: return "bit-flip";
    case FaultClass::kPivotTie: return "pivot-tie";
    case FaultClass::kRoundingFlip: return "rounding-flip";
  }
  return "?";
}

inline const std::vector<FaultClass>& all_fault_classes() {
  static const std::vector<FaultClass> classes = {FaultClass::kBitFlip,
                                                  FaultClass::kPivotTie};
  return classes;
}

}  // namespace pfact::robustness
