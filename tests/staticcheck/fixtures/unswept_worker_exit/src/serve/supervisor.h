#pragma once
// Part of the unswept_worker_exit overlay: kMystery IS diagnosed here, so
// the only PL009 finding the fixture seeds is the missing sweep entry in
// worker_pool.h.

namespace pfact::serve {

inline robustness::Diagnostic diagnose_worker_exit(WorkerExit e) {
  switch (e) {
    case WorkerExit::kCompleted: return robustness::Diagnostic::kOk;
    case WorkerExit::kSignalled:
      return robustness::Diagnostic::kWorkerFailure;
    case WorkerExit::kWatchdog:
      return robustness::Diagnostic::kDeadlineExceeded;
    case WorkerExit::kMystery:
      return robustness::Diagnostic::kWorkerFailure;
  }
  return robustness::Diagnostic::kInternalError;
}

}  // namespace pfact::serve
