#pragma once
// Seeded violation for PL009: WorkerExit::kMystery is named and diagnosed
// (see this overlay's supervisor.h) but missing from the all_worker_exits()
// sweep list — the real-kill soak harness would report full coverage while
// never producing or surviving this death class.

namespace pfact::serve {

enum class WorkerExit {
  kCompleted,
  kSignalled,
  kWatchdog,
  kMystery,
};

inline const char* worker_exit_name(WorkerExit e) {
  switch (e) {
    case WorkerExit::kCompleted: return "completed";
    case WorkerExit::kSignalled: return "signalled";
    case WorkerExit::kWatchdog: return "watchdog";
    case WorkerExit::kMystery: return "mystery";
  }
  return "?";
}

inline const std::vector<WorkerExit>& all_worker_exits() {
  static const std::vector<WorkerExit> classes = {WorkerExit::kCompleted,
                                                  WorkerExit::kSignalled,
                                                  WorkerExit::kWatchdog};
  return classes;
}

}  // namespace pfact::serve
