// Seeded violation for PL014: a bare blocking ::read in the serving layer
// with no poll bound and no waiver — exactly the wedge the soak harness
// once had to find dynamically.
#include "serve/queue.h"

namespace pfact::serve {

int drain_fd(int fd, char* buf, std::size_t cap) {
  return static_cast<int>(::read(fd, buf, cap));
}

}  // namespace pfact::serve
