#pragma once
// Seeded violation for PL011: sparse_field_tag<int> is named lawfully and
// swept, but there is NO dense field_tag<int> counterpart — a sparse blob
// of this field could never be cross-checked or resumed on the dense
// backend.

namespace pfact::robustness {

inline constexpr std::uint32_t kCheckpointVersion = 1;

template <class T>
const char* field_tag() = delete;
template <>
inline const char* field_tag<double>() { return "double"; }
template <>
inline const char* field_tag<float>() { return "single"; }

template <class T>
const char* sparse_field_tag() = delete;
template <>
inline const char* sparse_field_tag<double>() { return "sparse-double"; }
template <>
inline const char* sparse_field_tag<float>() { return "sparse-single"; }
template <>
inline const char* sparse_field_tag<int>() { return "sparse-int"; }

inline std::vector<std::string> all_sparse_field_tags() {
  return {sparse_field_tag<double>(), sparse_field_tag<float>(),
          sparse_field_tag<int>()};
}

}  // namespace pfact::robustness
