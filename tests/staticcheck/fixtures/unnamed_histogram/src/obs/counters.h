#pragma once
// Seeded violation for PL003: Histogram::kSpread was added to the enum but
// histogram_name() never learned its case — snapshots would emit no JSON
// key for it.

namespace pfact::obs {

enum class Counter : std::size_t {
  kElimSteps,
  kRowUpdates,
  kCount_,
};

enum class Histogram : std::size_t {
  kPivotMoveDistance,
  kSpread,
  kCount_,
};

}  // namespace pfact::obs
