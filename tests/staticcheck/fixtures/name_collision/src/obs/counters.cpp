#include "obs/counters.h"

// Seeded violation for PL002: two counters share one JSON key, so one
// counter's emitted value would silently overwrite the other's.

namespace pfact::obs {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kElimSteps: return "elim-steps";
    case Counter::kRowUpdates: return "elim-steps";
    case Counter::kCount_: break;
  }
  return "?";
}

const char* histogram_name(Histogram h) {
  switch (h) {
    case Histogram::kPivotMoveDistance: return "pivot-move-distance";
    case Histogram::kCount_: break;
  }
  return "?";
}

}  // namespace pfact::obs
