#pragma once
// Seeded violation for PL007: a new field tag ("long-double") joined the
// schema but kCheckpointVersion was NOT bumped — old blobs would decode
// under the new schema.

namespace pfact::robustness {

inline constexpr std::uint32_t kCheckpointVersion = 1;

template <class T>
const char* field_tag() = delete;
template <>
inline const char* field_tag<double>() { return "double"; }
template <>
inline const char* field_tag<float>() { return "single"; }
template <>
inline const char* field_tag<long double>() { return "long-double"; }

}  // namespace pfact::robustness
