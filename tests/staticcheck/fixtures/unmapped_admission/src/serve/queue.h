#pragma once
// staticcheck fixture: seeded PL010 violation — Admission::kShedShutdown is
// declared, named, and swept, but diagnose_admission() was never taught
// about it, so a shutdown shed would reach clients as the kInternalError
// backstop instead of a classified, retryable kCancelled.

namespace pfact::serve {

enum class Admission {
  kAccepted,
  kShedQueueFull,
  kShedDeadline,
  kShedShutdown,
};

inline const char* admission_name(Admission a) {
  switch (a) {
    case Admission::kAccepted: return "accepted";
    case Admission::kShedQueueFull: return "shed-queue-full";
    case Admission::kShedDeadline: return "shed-deadline";
    case Admission::kShedShutdown: return "shed-shutdown";
  }
  return "?";
}

inline const std::vector<Admission>& all_admissions() {
  static const std::vector<Admission> admissions = {
      Admission::kAccepted, Admission::kShedQueueFull,
      Admission::kShedDeadline, Admission::kShedShutdown};
  return admissions;
}

inline robustness::Diagnostic diagnose_admission(Admission a) {
  switch (a) {
    case Admission::kAccepted: return robustness::Diagnostic::kOk;
    case Admission::kShedQueueFull:
      return robustness::Diagnostic::kOverloaded;
    case Admission::kShedDeadline:
      return robustness::Diagnostic::kDeadlineExceeded;
  }
  return robustness::Diagnostic::kInternalError;
}

}  // namespace pfact::serve
