#pragma once
// staticcheck fixture: seeded PL010 violation — CacheProbe::kEnvelopeRejected
// is declared, named, and diagnosable, but missing from the
// all_cache_probes() sweep list, so no test or soak campaign could ever
// certify that the envelope-rejection path is covered.

namespace pfact::serve {

enum class CacheProbe {
  kHit,
  kMiss,
  kCorruptEntry,
  kEnvelopeRejected,
};

inline const char* cache_probe_name(CacheProbe p) {
  switch (p) {
    case CacheProbe::kHit: return "hit";
    case CacheProbe::kMiss: return "miss";
    case CacheProbe::kCorruptEntry: return "corrupt-entry";
    case CacheProbe::kEnvelopeRejected: return "envelope-rejected";
  }
  return "?";
}

inline const std::vector<CacheProbe>& all_cache_probes() {
  static const std::vector<CacheProbe> probes = {
      CacheProbe::kHit, CacheProbe::kMiss, CacheProbe::kCorruptEntry};
  return probes;
}

inline robustness::Diagnostic diagnose_cache_probe(CacheProbe p) {
  switch (p) {
    case CacheProbe::kHit: return robustness::Diagnostic::kOk;
    case CacheProbe::kMiss: return robustness::Diagnostic::kOk;
    case CacheProbe::kCorruptEntry:
      return robustness::Diagnostic::kCheckpointCorrupt;
    case CacheProbe::kEnvelopeRejected:
      return robustness::Diagnostic::kCheckpointCorrupt;
  }
  return robustness::Diagnostic::kInternalError;
}

}  // namespace pfact::serve
