#pragma once
// Seeded violation for PL006: two field_tag specializations return the same
// string — resume could validate a blob taken in the wrong scalar field.

namespace pfact::robustness {

inline constexpr std::uint32_t kCheckpointVersion = 1;

template <class T>
const char* field_tag() = delete;
template <>
inline const char* field_tag<double>() { return "double"; }
template <>
inline const char* field_tag<float>() { return "double"; }

}  // namespace pfact::robustness
