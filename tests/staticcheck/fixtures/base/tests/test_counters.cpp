// staticcheck fixture: the observed leg PL017 demands — every registered
// enumerator is asserted by at least one test source. Not compiled — the
// linter reads tests/ as raw text.
#include "obs/counters.h"

namespace pfact::obs {

void covers_the_taxonomy() {
  ScopedCounters sc;
  const CounterDelta d = sc.delta();
  EXPECT_GT(d[Counter::kElimSteps], 0u);
  EXPECT_GT(d[Counter::kRowUpdates], 0u);
  EXPECT_GT(d.histogram_total(Histogram::kPivotMoveDistance), 0u);
}

}  // namespace pfact::obs
