#pragma once
// staticcheck fixture: minimal Diagnostic taxonomy with its name switch.

namespace pfact::robustness {

enum class Diagnostic {
  kOk,
  kBadInput,
  kNumericOverflow,
};

inline const char* diagnostic_name(Diagnostic d) {
  switch (d) {
    case Diagnostic::kOk: return "ok";
    case Diagnostic::kBadInput: return "bad-input";
    case Diagnostic::kNumericOverflow: return "numeric-overflow";
  }
  return "?";
}

}  // namespace pfact::robustness
