#include "robustness/retry.h"

namespace pfact::robustness {

FailureKind classify_diagnostic(Diagnostic d) {
  switch (d) {
    case Diagnostic::kOk:
      return FailureKind::kSuccess;

    case Diagnostic::kNumericOverflow:
      return FailureKind::kDeterministic;

    case Diagnostic::kBadInput:
      return FailureKind::kFatal;
  }
  return FailureKind::kFatal;
}

}  // namespace pfact::robustness
