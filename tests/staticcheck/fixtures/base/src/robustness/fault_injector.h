#pragma once
// staticcheck fixture: minimal fault taxonomy (enum + name switch + sweep
// list) in the shape pfact_lint parses.

namespace pfact::robustness {

enum class FaultClass {
  kNone,
  kBitFlip,
  kPivotTie,
};

inline const char* fault_class_name(FaultClass f) {
  switch (f) {
    case FaultClass::kNone: return "none";
    case FaultClass::kBitFlip: return "bit-flip";
    case FaultClass::kPivotTie: return "pivot-tie";
  }
  return "?";
}

inline const std::vector<FaultClass>& all_fault_classes() {
  static const std::vector<FaultClass> classes = {FaultClass::kBitFlip,
                                                  FaultClass::kPivotTie};
  return classes;
}

}  // namespace pfact::robustness
