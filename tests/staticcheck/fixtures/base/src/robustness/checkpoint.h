#pragma once
// staticcheck fixture: minimal checkpoint schema (version constant + field
// tags) in the shape pfact_lint parses.

namespace pfact::robustness {

inline constexpr std::uint32_t kCheckpointVersion = 1;

template <class T>
const char* field_tag() = delete;
template <>
inline const char* field_tag<double>() { return "double"; }
template <>
inline const char* field_tag<float>() { return "single"; }

}  // namespace pfact::robustness
