// staticcheck fixture: the increment leg PL017 demands — every enumerator
// registered in src/obs/counters.h is bumped by real-looking elimination
// code. Not compiled — parsed only.
#include "obs/counters.h"

namespace pfact::factor {

void eliminate_column(std::size_t rows_updated, std::size_t pivot_distance) {
  PFACT_COUNT(kElimSteps);
  PFACT_COUNT_N(kRowUpdates, rows_updated);
  PFACT_HISTO(kPivotMoveDistance, pivot_distance);
}

}  // namespace pfact::factor
