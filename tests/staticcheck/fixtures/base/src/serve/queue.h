#pragma once
// staticcheck fixture: minimal queue-admission taxonomy (enum + name switch
// + sweep list + Diagnostic mapping) in the shape pfact_lint parses for
// PL010.

namespace pfact::serve {

enum class Admission {
  kAccepted,
  kShedQueueFull,
  kShedDeadline,
};

inline const char* admission_name(Admission a) {
  switch (a) {
    case Admission::kAccepted: return "accepted";
    case Admission::kShedQueueFull: return "shed-queue-full";
    case Admission::kShedDeadline: return "shed-deadline";
  }
  return "?";
}

inline const std::vector<Admission>& all_admissions() {
  static const std::vector<Admission> admissions = {
      Admission::kAccepted, Admission::kShedQueueFull,
      Admission::kShedDeadline};
  return admissions;
}

inline robustness::Diagnostic diagnose_admission(Admission a) {
  switch (a) {
    case Admission::kAccepted: return robustness::Diagnostic::kOk;
    case Admission::kShedQueueFull:
      return robustness::Diagnostic::kOverloaded;
    case Admission::kShedDeadline:
      return robustness::Diagnostic::kDeadlineExceeded;
  }
  return robustness::Diagnostic::kInternalError;
}

}  // namespace pfact::serve
