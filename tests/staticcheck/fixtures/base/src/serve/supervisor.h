#pragma once
// staticcheck fixture: minimal worker-exit -> Diagnostic mapping in the
// shape pfact_lint parses for PL009 (defined in worker_pool.h, diagnosed
// here — the cross-file pair the rule guards).

namespace pfact::serve {

inline robustness::Diagnostic diagnose_worker_exit(WorkerExit e) {
  switch (e) {
    case WorkerExit::kCompleted: return robustness::Diagnostic::kOk;
    case WorkerExit::kSignalled:
      return robustness::Diagnostic::kWorkerFailure;
    case WorkerExit::kWatchdog:
      return robustness::Diagnostic::kDeadlineExceeded;
  }
  return robustness::Diagnostic::kInternalError;
}

}  // namespace pfact::serve
