// staticcheck fixture: a clean registered signal handler, pinning PL015's
// scrape (sa_handler assignment) and walk (atomic store + allowlisted
// ::write self-pipe wake), and the PL014 waiver for the handler itself.
// Not compiled — parsed only.
#include "serve/frontend.h"

namespace pfact::serve {

namespace {
std::atomic<bool> g_stop{false};
int g_wake_fd = -1;
}  // namespace

void pfact_frontend_sigterm(int) {
  g_stop.store(true);
  const char byte = 1;
  ::write(g_wake_fd, &byte, 1);  // O_NONBLOCK self-pipe, never blocks
}

void install_sigterm_handler(int wake_fd) {
  g_wake_fd = wake_fd;
  struct sigaction sa = {};
  sa.sa_handler = pfact_frontend_sigterm;
  sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace pfact::serve
