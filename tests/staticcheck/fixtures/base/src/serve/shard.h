#pragma once
// Fixture copy of the ShardStatus taxonomy surface PL019 scrapes: the enum
// plus its four legs — name, Diagnostic mapping, obs counter, sweep.
// Trimmed to what the rule reads; the real header carries the spawn/probe
// helpers too.

#include <vector>

namespace pfact::serve {

enum class ShardStatus {
  kStarting,
  kServing,
  kUnresponsive,
  kDead,
  kRestarting,
};

inline const char* shard_status_name(ShardStatus s) {
  switch (s) {
    case ShardStatus::kStarting: return "starting";
    case ShardStatus::kServing: return "serving";
    case ShardStatus::kUnresponsive: return "unresponsive";
    case ShardStatus::kDead: return "dead";
    case ShardStatus::kRestarting: return "restarting";
  }
  return "?";
}

inline const std::vector<ShardStatus>& all_shard_statuses() {
  static const std::vector<ShardStatus> statuses = {
      ShardStatus::kStarting, ShardStatus::kServing,
      ShardStatus::kUnresponsive, ShardStatus::kDead,
      ShardStatus::kRestarting};
  return statuses;
}

inline robustness::Diagnostic diagnose_shard_status(ShardStatus s) {
  switch (s) {
    case ShardStatus::kStarting: return robustness::Diagnostic::kConnReset;
    case ShardStatus::kServing: return robustness::Diagnostic::kOk;
    case ShardStatus::kUnresponsive:
      return robustness::Diagnostic::kDeadlineExceeded;
    case ShardStatus::kDead: return robustness::Diagnostic::kWorkerFailure;
    case ShardStatus::kRestarting:
      return robustness::Diagnostic::kConnReset;
  }
  return robustness::Diagnostic::kInternalError;
}

inline obs::Counter shard_status_counter(ShardStatus s) {
  switch (s) {
    case ShardStatus::kStarting: return obs::Counter::kShardStarting;
    case ShardStatus::kServing: return obs::Counter::kShardServing;
    case ShardStatus::kUnresponsive:
      return obs::Counter::kShardUnresponsive;
    case ShardStatus::kDead: return obs::Counter::kShardDead;
    case ShardStatus::kRestarting: return obs::Counter::kShardRestarting;
  }
  return obs::Counter::kShardDead;
}

}  // namespace pfact::serve
