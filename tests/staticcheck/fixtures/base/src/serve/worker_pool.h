#pragma once
// staticcheck fixture: minimal worker-death taxonomy (enum + name switch +
// soak-coverage sweep list) in the shape pfact_lint parses for PL009.

namespace pfact::serve {

enum class WorkerExit {
  kCompleted,
  kSignalled,
  kWatchdog,
};

inline const char* worker_exit_name(WorkerExit e) {
  switch (e) {
    case WorkerExit::kCompleted: return "completed";
    case WorkerExit::kSignalled: return "signalled";
    case WorkerExit::kWatchdog: return "watchdog";
  }
  return "?";
}

inline const std::vector<WorkerExit>& all_worker_exits() {
  static const std::vector<WorkerExit> classes = {WorkerExit::kCompleted,
                                                  WorkerExit::kSignalled,
                                                  WorkerExit::kWatchdog};
  return classes;
}

}  // namespace pfact::serve
