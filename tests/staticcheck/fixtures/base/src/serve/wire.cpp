// staticcheck fixture: a clean codec pair plus the audited deadline
// wrappers, pinning PL013's walker semantics (if/else collapse, counted
// loop groups, condition calls, the put_bytes trailer idiom) and PL014's
// waiver mechanics (read_exact/write_frame are allowlisted and must keep
// containing raw syscalls). Not compiled — parsed only.
#include "serve/queue.h"

namespace pfact::serve {

void encode_frame(ByteWriter& w, const Frame& f) {
  w.put_u32(kFrameMagic);
  if (f.rows.empty()) {
    w.put_string(std::string());
  } else {
    w.put_string(join_rows(f.rows));
  }
  w.put_u64(f.steps);
  for (const Event& e : f.events) {
    w.put_u64(e.column);
    w.put_u32(e.action);
  }
  w.put_bytes(f.payload.data(), f.payload.size());
}

bool decode_frame(ByteReader& r, Frame& out) {
  if (r.get_u32() != kFrameMagic) return false;
  out.rows = split_rows(r.get_string());
  out.steps = r.get_u64();
  for (std::uint64_t i = 0; i < out.steps; ++i) {
    Event e;
    e.column = r.get_u64();
    if (!to_action(r.get_u32(), e.action)) return false;
    out.events.push_back(e);
  }
  out.payload = r.rest();  // trailer: the remainder of the payload
  return true;
}

bool read_exact(int fd, char* buf, std::size_t n, int deadline_ms) {
  while (n > 0) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (::poll(&pfd, 1, deadline_ms) <= 0) return false;
    const ssize_t got = ::read(fd, buf, n);
    if (got <= 0) return false;
    buf += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_frame(int fd, const std::string& frame) {
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t put = ::write(fd, frame.data() + off, frame.size() - off);
    if (put < 0 && errno == EINTR) continue;
    if (put <= 0) return false;
    off += static_cast<std::size_t>(put);
  }
  return true;
}

}  // namespace pfact::serve
