#pragma once
// staticcheck fixture: minimal cache-probe taxonomy (enum + name switch +
// sweep list + Diagnostic mapping) in the shape pfact_lint parses for
// PL010.

namespace pfact::serve {

enum class CacheProbe {
  kHit,
  kMiss,
  kCorruptEntry,
};

inline const char* cache_probe_name(CacheProbe p) {
  switch (p) {
    case CacheProbe::kHit: return "hit";
    case CacheProbe::kMiss: return "miss";
    case CacheProbe::kCorruptEntry: return "corrupt-entry";
  }
  return "?";
}

inline const std::vector<CacheProbe>& all_cache_probes() {
  static const std::vector<CacheProbe> probes = {
      CacheProbe::kHit, CacheProbe::kMiss, CacheProbe::kCorruptEntry};
  return probes;
}

inline robustness::Diagnostic diagnose_cache_probe(CacheProbe p) {
  switch (p) {
    case CacheProbe::kHit: return robustness::Diagnostic::kOk;
    case CacheProbe::kMiss: return robustness::Diagnostic::kOk;
    case CacheProbe::kCorruptEntry:
      return robustness::Diagnostic::kCheckpointCorrupt;
  }
  return robustness::Diagnostic::kInternalError;
}

}  // namespace pfact::serve
