#pragma once
// staticcheck fixture: minimal Counter/Histogram taxonomy in the house
// shape pfact_lint parses. Not compiled — parsed only.

namespace pfact::obs {

enum class Counter : std::size_t {
  kElimSteps,
  kRowUpdates,
  kCount_,
};

enum class Histogram : std::size_t {
  kPivotMoveDistance,
  kCount_,
};

}  // namespace pfact::obs
