#pragma once
// Seeded violation for PL009: WorkerExit::kMystery was added to the pool's
// taxonomy (named, and in the soak sweep) but diagnose_worker_exit() in
// supervisor.h was never taught about it — a worker dying this way would
// fall through to the kInternalError backstop instead of the retry loop.

namespace pfact::serve {

enum class WorkerExit {
  kCompleted,
  kSignalled,
  kWatchdog,
  kMystery,
};

inline const char* worker_exit_name(WorkerExit e) {
  switch (e) {
    case WorkerExit::kCompleted: return "completed";
    case WorkerExit::kSignalled: return "signalled";
    case WorkerExit::kWatchdog: return "watchdog";
    case WorkerExit::kMystery: return "mystery";
  }
  return "?";
}

inline const std::vector<WorkerExit>& all_worker_exits() {
  static const std::vector<WorkerExit> classes = {WorkerExit::kCompleted,
                                                  WorkerExit::kSignalled,
                                                  WorkerExit::kWatchdog,
                                                  WorkerExit::kMystery};
  return classes;
}

}  // namespace pfact::serve
