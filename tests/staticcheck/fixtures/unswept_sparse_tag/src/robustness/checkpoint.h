#pragma once
// Seeded violation for PL011: sparse_field_tag<float> exists and obeys the
// naming law, but all_sparse_field_tags() forgot it — the checkpoint
// corruption matrix would never exercise the sparse-single codec. The tag
// SET is unchanged, so no manifest rule piggybacks on the finding.

namespace pfact::robustness {

inline constexpr std::uint32_t kCheckpointVersion = 1;

template <class T>
const char* field_tag() = delete;
template <>
inline const char* field_tag<double>() { return "double"; }
template <>
inline const char* field_tag<float>() { return "single"; }

template <class T>
const char* sparse_field_tag() = delete;
template <>
inline const char* sparse_field_tag<double>() { return "sparse-double"; }
template <>
inline const char* sparse_field_tag<float>() { return "sparse-single"; }

inline std::vector<std::string> all_sparse_field_tags() {
  return {sparse_field_tag<double>()};
}

}  // namespace pfact::robustness
