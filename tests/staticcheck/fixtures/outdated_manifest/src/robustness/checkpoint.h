#pragma once
// Seeded violation for PL008: the schema grew a tag AND the version was
// correctly bumped to 2, but the committed manifest still records the old
// state — it must be regenerated with --update-manifest.

namespace pfact::robustness {

inline constexpr std::uint32_t kCheckpointVersion = 2;

template <class T>
const char* field_tag() = delete;
template <>
inline const char* field_tag<double>() { return "double"; }
template <>
inline const char* field_tag<float>() { return "single"; }
template <>
inline const char* field_tag<long double>() { return "long-double"; }

}  // namespace pfact::robustness
