// Seeded violation for PL015: a registered SIGUSR1 handler that calls
// fprintf — not async-signal-safe (it can take the stdio lock the
// interrupted thread already holds).
#include "serve/queue.h"

namespace pfact::serve {

void on_usr1(int) {
  std::fprintf(stderr, "telemetry tick\n");
}

void install_usr1() {
  ::signal(SIGUSR1, on_usr1);
}

}  // namespace pfact::serve
