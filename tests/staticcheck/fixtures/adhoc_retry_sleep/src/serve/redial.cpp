// Seeded PL018 drift: a reconnect pacer that sleeps a hand-rolled schedule.
// The delays never flowed through RetryPolicy::backoff, so they are outside
// the seeded retry story — invisible to the soak's bit-equality checks and
// free to drift from the schedule every other retry loop replays.

#include <unistd.h>

namespace pfact::serve {

bool try_dial(int attempt);

bool redial(int attempts) {
  for (int i = 0; i < attempts; ++i) {
    if (try_dial(i)) return true;
    usleep(1000u * static_cast<unsigned>(i + 1));
  }
  return false;
}

}  // namespace pfact::serve
