// Reproduces the accuracy-vs-parallelism tradeoff the paper is built around
// (Section 1, [4]): backward error of the stable sequential algorithms
// (GEP, GQR) vs the weakly-stable (GEM/GEMS, plain GE) and the fast
// parallel solver (Csanky), across matrix ensembles, together with each
// algorithm's parallel depth. The shape to observe: the NC-depth solver
// loses many digits; the P-complete ones are backward stable.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "analysis/depth_model.h"
#include "analysis/error_analysis.h"
#include "factor/triangular.h"
#include "matrix/generators.h"
#include "nc/csanky.h"

namespace {

using namespace pfact;
using factor::PivotStrategy;

double csanky_backward_error(const Matrix<double>& a,
                             const std::vector<double>& b) {
  try {
    auto x = nc::csanky_solve(a, b);
    return analysis::relative_residual(a, x, b);
  } catch (...) {
    return INFINITY;
  }
}

double qr_backward_error(const Matrix<double>& a,
                         const std::vector<double>& b, bool sameh_kuck) {
  auto x = factor::solve_qr(a, b, sameh_kuck);
  return analysis::relative_residual(a, x, b);
}

double ge_backward_error(const Matrix<double>& a,
                         const std::vector<double>& b, PivotStrategy s) {
  try {
    return analysis::solve_backward_error(a, b, s);
  } catch (...) {
    return INFINITY;
  }
}

void row(const char* name, const Matrix<double>& a) {
  std::vector<double> b(a.rows());
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = std::sin(static_cast<double>(i) + 1.0);
  std::printf("%-12s", name);
  for (auto s : {PivotStrategy::kNone, PivotStrategy::kPartial,
                 PivotStrategy::kMinimalSwap}) {
    double e = ge_backward_error(a, b, s);
    std::printf(" %9.1e", e);
  }
  std::printf(" %9.1e %9.1e %9.1e\n", qr_backward_error(a, b, false),
              qr_backward_error(a, b, true), csanky_backward_error(a, b));
}

void print_tradeoff() {
  std::printf("=== Accuracy vs parallelism (backward errors, n=24) ===\n");
  std::printf("%-12s %9s %9s %9s %9s %9s %9s\n", "ensemble", "GE", "GEP",
              "GEM", "GQR", "GQR-SK", "Csanky");
  const std::size_t n = 24;
  row("random", gen::random_general(n, 1));
  row("nonsing", gen::random_nonsingular(n, 2));
  row("diag-dom", gen::random_diagonally_dominant(n, 3));
  row("spd", gen::random_spd(n, 4));
  row("graded", gen::graded(n, 0.5));
  row("wilkinson", gen::wilkinson_growth(n));
  row("hilbert12", gen::hilbert(12));
  std::printf("\nParallel depth (model, n=256): GE-family %zu; GQR natural "
              "%zu; GQR Sameh-Kuck %zu; Csanky %zu\n",
              analysis::ge_sequential(256).depth,
              analysis::givens_natural(256).depth,
              analysis::givens_sameh_kuck(256).depth,
              analysis::csanky_nc(256).depth);
  std::printf("=> the low-depth solver (Csanky) pays orders of magnitude in "
              "accuracy: the tradeoff.\n");

  std::printf("\n=== Growth factors (element growth, stability proxy) ===\n");
  std::printf("%-12s %10s %10s %10s\n", "ensemble", "GE", "GEP", "GEM");
  for (auto& [name, a] :
       std::vector<std::pair<const char*, Matrix<double>>>{
           {"random", gen::random_general(24, 5)},
           {"wilkinson", gen::wilkinson_growth(24)},
           {"graded", gen::graded(24, 0.5)}}) {
    std::printf("%-12s", name);
    for (auto s : {PivotStrategy::kNone, PivotStrategy::kPartial,
                   PivotStrategy::kMinimalSwap}) {
      std::printf(" %10.3g", analysis::growth_factor(a, s));
    }
    std::printf("\n");
  }
  std::printf("(GEP's growth on the Wilkinson matrix is ~2^(n-1) — large "
              "but bounded; minimal pivoting has no bound at all.)\n\n");
}

void BM_SolveGep(benchmark::State& state) {
  auto a = gen::random_nonsingular(
      static_cast<std::size_t>(state.range(0)), 1);
  std::vector<double> b(a.rows(), 1.0);
  for (auto _ : state) {
    auto x = factor::solve_plu(a, b, PivotStrategy::kPartial);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_SolveGep)->Arg(16)->Arg(64);

void BM_SolveQr(benchmark::State& state) {
  auto a = gen::random_nonsingular(
      static_cast<std::size_t>(state.range(0)), 1);
  std::vector<double> b(a.rows(), 1.0);
  for (auto _ : state) {
    auto x = factor::solve_qr(a, b, false);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_SolveQr)->Arg(16)->Arg(64);

void BM_SolveCsanky(benchmark::State& state) {
  auto a = gen::random_nonsingular(
      static_cast<std::size_t>(state.range(0)), 1);
  std::vector<double> b(a.rows(), 1.0);
  for (auto _ : state) {
    auto x = nc::csanky_solve(a, b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_SolveCsanky)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_tradeoff();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
