// Reproduces Table 1: parallel complexity of GE with different pivoting
// strategies (GEP / GEM / GEMS) on general / nonsingular / strongly
// nonsingular matrices.
//
// For each "Inherently Seq." cell we RUN the corresponding hardness
// construction end-to-end (circuit -> matrix -> algorithm -> decoded output)
// over a circuit suite and report the success rate — the executable form of
// the P-completeness proof. For each "NC" cell we run the NC algorithm and
// verify it reproduces the sequential algorithm, reporting its model depth
// against the sequential chain.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/depth_model.h"
#include "circuit/builders.h"
#include "core/gep_gadgets.h"
#include "core/simulator.h"
#include "matrix/generators.h"
#include "nc/gems_nc.h"

namespace {

using namespace pfact;
using circuit::CvpInstance;
using factor::PivotStrategy;

// Runs the GEM/GEMS reduction over a small circuit suite; returns pass rate.
std::pair<int, int> gem_suite(PivotStrategy s, bool bordered) {
  std::vector<circuit::Circuit> suite = {
      circuit::xor_circuit(), circuit::majority3_circuit(),
      circuit::parity_circuit(4), circuit::random_circuit(3, 20, 5)};
  int pass = 0, total = 0;
  for (const auto& c : suite) {
    for (unsigned m = 0; m < (1u << c.num_inputs()); ++m) {
      std::vector<bool> in(c.num_inputs());
      for (std::size_t i = 0; i < in.size(); ++i) in[i] = (m >> i) & 1;
      CvpInstance inst{c, in};
      core::SimulationResult r =
          bordered ? core::simulate_gem_nonsingular<double>(inst)
                   : core::simulate_gem<double>(inst, s);
      ++total;
      if (r.ok && r.value == inst.expected()) ++pass;
    }
  }
  return {pass, total};
}

std::pair<int, int> gep_suite() {
  int pass = 0, total = 0;
  for (int u : {2, 1}) {
    for (int w : {2, 1}) {
      for (std::size_t depth : {0u, 2u, 4u}) {
        core::GepChain c = core::build_gep_nand_chain(u, w, depth);
        double out = core::run_gep_chain(c);
        double expect = (u == 2 && w == 2) ? 1.0 : 2.0;
        ++total;
        if (std::abs(out - expect) < 1e-6) ++pass;
      }
    }
  }
  return {pass, total};
}

int gems_nc_matches() {
  int match = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto a = gen::random_nonsingular_exact(6, 3, seed);
    auto perm = nc::gems_nc_permutation(a);
    auto gems = factor::gems(a);
    if (perm == gems.row_perm.map()) ++match;
  }
  return match;
}

void print_table1() {
  std::printf("=== Table 1: parallel complexity of GE pivoting strategies "
              "===\n");
  std::printf("%-6s | %-34s | %-34s | %-30s\n", "", "general",
              "nonsingular", "strongly nonsingular");
  auto gep = gep_suite();
  std::printf(
      "%-6s | Inherently Seq. [NAND sim %2d/%2d] | Inherently Seq. "
      "[same gadgets]     | Inherently Seq. [Thm 3.4]\n",
      "GEP", gep.first, gep.second);
  auto gem_g = gem_suite(PivotStrategy::kMinimalSwap, false);
  auto gem_n = gem_suite(PivotStrategy::kMinimalSwap, true);
  std::printf(
      "%-6s | Inherently Seq. [sim %3d/%3d]    | Inherently Seq. "
      "[bordered %3d/%3d] | NC [no row exchange needed]\n",
      "GEM", gem_g.first, gem_g.second, gem_n.first, gem_n.second);
  auto gems_g = gem_suite(PivotStrategy::kMinimalShift, false);
  int nc_ok = gems_nc_matches();
  auto d_seq = analysis::ge_sequential(256);
  auto d_nc = analysis::gems_nc(256);
  std::printf(
      "%-6s | Inherently Seq. [sim %3d/%3d]    | NC^2 [Thm 3.3, "
      "LFMIS match %d/5]    | NC [unique LU]\n",
      "GEMS", gems_g.first, gems_g.second, nc_ok);
  std::printf(
      "\nDepth at n=256: sequential GE chain = %zu stages; "
      "GEMS-NC model depth = %zu (log^2 n)\n\n",
      d_seq.depth, d_nc.depth);
}

void BM_GemReductionXor(benchmark::State& state) {
  CvpInstance inst{circuit::xor_circuit(), {true, false}};
  for (auto _ : state) {
    auto r = core::simulate_gem<double>(inst, PivotStrategy::kMinimalShift);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GemReductionXor);

void BM_GemsNcPermutation(benchmark::State& state) {
  auto a = gen::random_nonsingular_exact(
      static_cast<std::size_t>(state.range(0)), 3, 7);
  for (auto _ : state) {
    auto p = nc::gems_nc_permutation(a);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_GemsNcPermutation)->Arg(4)->Arg(6)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
