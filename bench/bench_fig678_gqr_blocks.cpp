// Reproduces Figures 6-8: the D/W/N functional blocks for GQR in the exact
// real model — +/-1 encodings delivered as (value, companion-1) pairs,
// fixed rotation counts, value landing on the carrier diagonal.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/gqr_gadgets.h"
#include "factor/givens.h"

namespace {

using namespace pfact;

void print_blocks() {
  std::printf("=== Figures 6-8: GQR functional blocks (exact model) ===\n");
  std::printf("Encodings: False=-1, True=+1 (paper, Section 4).\n\n");
  std::printf("W (wire/PASS) block — %zu rotations, every case:\n",
              core::kGqrPassRotations);
  for (int a : {1, -1}) {
    Matrix<long double> m = core::gqr_pass_template();
    m(0, 0) = a;
    std::size_t rot = factor::givens_steps(m, 100);
    std::printf("  a=%+d -> carrier (value, companion) = (%+.15Lf, %.15Lf)"
                "  [%zu rotations]\n",
                a, m(2, 2), m(2, 3), rot);
  }
  std::printf("\nN (NAND) block — %zu rotations, every case:\n",
              core::kGqrNandRotations);
  for (int a : {1, -1}) {
    for (int b : {1, -1}) {
      Matrix<long double> m = core::gqr_nand_template();
      m(0, 0) = a;
      m(2, 2) = b;
      std::size_t rot = factor::givens_steps(m, 100);
      std::printf(
          "  a=%+d b=%+d -> (%+.15Lf, %.15Lf) expect %+d  [%zu rot]\n", a,
          b, m(4, 4), m(4, 5), (a == 1 && b == 1) ? -1 : 1, rot);
    }
  }
  std::printf(
      "\nD (duplicator): realized as two W blocks reading one slot pair in "
      "sequence\n(chains below demonstrate composition):\n");
  for (std::size_t depth : {1u, 8u}) {
    for (int a : {1, -1}) {
      core::GqrChain c = core::build_gqr_pass_chain(a, depth);
      factor::givens_steps(c.matrix, 1u << 20);
      std::printf("  depth=%zu a=%+d -> %+.12Lf\n", depth, a,
                  c.matrix(c.value_pos, c.value_pos));
    }
  }
  std::printf("\n");
}

void BM_GqrNandBlock(benchmark::State& state) {
  for (auto _ : state) {
    Matrix<long double> m = pfact::core::gqr_nand_template();
    m(0, 0) = 1;
    m(2, 2) = -1;
    pfact::factor::givens_steps(m, 100);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_GqrNandBlock);

void BM_GqrChain(benchmark::State& state) {
  for (auto _ : state) {
    auto c = pfact::core::build_gqr_nand_chain(
        1, -1, static_cast<std::size_t>(state.range(0)));
    pfact::factor::givens_steps(c.matrix, 1u << 24);
    benchmark::DoNotOptimize(c.matrix);
  }
}
BENCHMARK(BM_GqrChain)->Arg(4)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  print_blocks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
