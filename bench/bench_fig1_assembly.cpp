// Reproduces Figure 1 (block assembly): reports how NAND circuits are
// compiled into reduction matrices — block counts by type, matrix order
// (the analogue of the paper's p_j position formula), and correctness of
// the assembled simulation for every input assignment.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "circuit/builders.h"
#include "core/simulator.h"

namespace {

using namespace pfact;
using circuit::CvpInstance;

void report(const char* name, const circuit::Circuit& c) {
  CvpInstance inst{c, std::vector<bool>(c.num_inputs(), true)};
  core::GemReduction red = core::build_gem_reduction(inst);
  std::size_t n_nand = 0, n_dup = 0, n_pass = 0, n_in = 0;
  for (const auto& b : red.plan.blocks) {
    switch (b.type) {
      case core::BlockType::kInput: ++n_in; break;
      case core::BlockType::kPass: ++n_pass; break;
      case core::BlockType::kDup: ++n_dup; break;
      case core::BlockType::kNand: ++n_nand; break;
    }
  }
  // Verify the simulation on all assignments (or 64 random ones if large).
  int pass = 0, total = 0;
  std::size_t k = c.num_inputs();
  for (unsigned m = 0; m < (1u << k) && total < 16; ++m) {
    std::vector<bool> in(k);
    for (std::size_t i = 0; i < k; ++i) in[i] = (m >> i) & 1;
    CvpInstance cur{c, in};
    auto r = core::simulate_gem<double>(
        cur, factor::PivotStrategy::kMinimalShift);
    ++total;
    if (r.ok && r.value == cur.expected()) ++pass;
  }
  std::printf(
      "%-12s gates=%3zu  ->  order nu=%5zu  blocks: N=%3zu D=%3zu W=%4zu "
      "in=%2zu  layers=%3zu  sim %d/%d\n",
      name, c.num_gates(), red.matrix.rows(), n_nand, n_dup, n_pass, n_in,
      red.plan.num_layers, pass, total);
}

void print_fig1() {
  std::printf("=== Figure 1: block assembly (pipeline layout) ===\n");
  report("xor", circuit::xor_circuit());
  report("majority3", circuit::majority3_circuit());
  report("parity5", circuit::parity_circuit(5));
  report("adder3", circuit::adder_carry_circuit(3));
  report("comparator3", circuit::comparator_circuit(3));
  report("chain40", circuit::deep_chain_circuit(40));
  report("random25", circuit::random_circuit(4, 25, 11));
  std::printf("\n");
}

void BM_BuildReduction(benchmark::State& state) {
  auto c = circuit::deep_chain_circuit(
      static_cast<std::size_t>(state.range(0)));
  CvpInstance inst{c, {true, false}};
  for (auto _ : state) {
    auto red = pfact::core::build_gem_reduction(inst);
    benchmark::DoNotOptimize(red.matrix);
  }
}
BENCHMARK(BM_BuildReduction)->Arg(10)->Arg(20)->Arg(40);

}  // namespace

int main(int argc, char** argv) {
  print_fig1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
