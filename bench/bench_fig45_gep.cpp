// Reproduces Figures 4-5 / Theorem 3.4 (GEP is inherently sequential, even
// on strongly nonsingular matrices): the GEP functional blocks compute NAND
// through pivot-magnitude contests; the pivot TRACE — the object of the
// theorem's P-complete language L = {(i,j,A) : GEP uses row i to eliminate
// column j} — encodes the inputs; and the construction's leading principal
// minors are (near-)universally nonsingular thanks to the diagonal fillers.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/gep_gadgets.h"
#include "factor/gaussian.h"
#include "numeric/rational.h"

namespace {

using namespace pfact;

void print_fig45() {
  std::printf("=== Figures 4-5 / Theorem 3.4: GEP reduction blocks ===\n");
  std::printf("Encodings: False=1, True=2 (pivot contests compare "
              "magnitudes against 3/2).\n\n");
  std::printf("N block truth table (decoded from the elimination):\n");
  for (int u : {2, 1}) {
    for (int w : {2, 1}) {
      core::GepChain c = core::build_gep_nand_chain(u, w, 0);
      factor::PivotTrace trace;
      double out = core::run_gep_chain(c, &trace);
      std::printf(
          "  u=%d w=%d -> out=%.6f (expect %d)   pivot rows for cols 0,1: "
          "(%zu, %zu)\n",
          u, w, out, (u == 2 && w == 2) ? 1 : 2, trace[0].pivot_row,
          trace[1].pivot_row);
    }
  }
  std::printf(
      "\nLanguage L of Theorem 3.4: 'GEP uses row 2 for column 0' iff u is "
      "True:\n");
  for (int u : {2, 1}) {
    core::GepChain c = core::build_gep_nand_chain(u, 2, 0);
    factor::PivotTrace trace;
    core::run_gep_chain(c, &trace);
    std::printf("  u=%d: (2,0,A) in L ? %s\n", u,
                trace.used_row_for_column(2, 0) ? "yes" : "no");
  }
  std::printf("\nNAND through PASS chains (value survives routing):\n");
  for (std::size_t depth : {1u, 4u, 8u}) {
    int pass = 0;
    for (int u : {2, 1})
      for (int w : {2, 1}) {
        core::GepChain c = core::build_gep_nand_chain(u, w, depth);
        double out = core::run_gep_chain(c);
        double expect = (u == 2 && w == 2) ? 1.0 : 2.0;
        if (std::abs(out - expect) < 1e-6) ++pass;
      }
    std::printf("  depth=%zu: %d/4 cases correct\n", depth, pass);
  }
  // Strong nonsingularity (the Fig-5 direction): count singular leading
  // principal minors of the chain matrix, exactly.
  core::GepChain c = core::build_gep_nand_chain(2, 1, 2);
  Matrix<numeric::Rational> a = to_rational(c.matrix);
  std::size_t singular = 0;
  for (std::size_t k = 1; k <= a.rows(); ++k) {
    if (factor::det(a.leading_minor(k)).is_zero()) ++singular;
  }
  std::printf(
      "\nLeading principal minors of the depth-2 NAND chain (order %zu): "
      "%zu singular of %zu\n",
      a.rows(), singular, a.rows());
  std::printf(
      "(0 singular minors => the chain matrix is STRONGLY NONSINGULAR: the "
      "class\nTheorem 3.4 extends Vavasis' result to. The paper's Figure 5 "
      "achieves this\nvia strict diagonal dominance; our tiny diagonal "
      "fillers achieve it directly.)\n\n");
}

void BM_GepNandChain(benchmark::State& state) {
  for (auto _ : state) {
    core::GepChain c = core::build_gep_nand_chain(
        2, 1, static_cast<std::size_t>(state.range(0)));
    double out = core::run_gep_chain(c);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GepNandChain)->Arg(0)->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  print_fig45();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
