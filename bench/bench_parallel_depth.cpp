// Reproduces the introduction's parallelism claims: GQR under the
// Sameh-Kuck ordering [16] retires the same n(n-1)/2 rotations in O(n)
// stages of independent rotations ("the best choice for solving dense
// systems efficiently and stably in parallel"), versus the Theta(n^2)
// sequential chain of natural-order GQR and the n-stage chain of GE —
// measured stage counts, identical |R|, and equal backward error.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "analysis/depth_model.h"
#include "analysis/error_analysis.h"
#include "factor/givens.h"
#include "factor/householder.h"
#include "factor/triangular.h"
#include "matrix/generators.h"

namespace {

using namespace pfact;

void print_depth() {
  std::printf("=== Parallel depth: Givens orderings (measured) ===\n");
  std::printf("%6s %12s %12s %14s %12s\n", "n", "rotations", "nat stages",
              "SK stages", "max |R| diff");
  for (std::size_t n : {8u, 16u, 32u, 64u}) {
    auto a = gen::random_general(n, 7);
    auto nat = factor::givens_qr(a, false);
    auto sk = factor::givens_qr_sameh_kuck(a, false);
    double diff = 0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i; j < n; ++j)
        diff = std::max(diff,
                        std::fabs(std::fabs(nat.r(i, j)) -
                                  std::fabs(sk.r(i, j))));
    std::printf("%6zu %12zu %12zu %14zu %12.2e\n", n, nat.rotations,
                nat.stages, sk.stages, diff);
  }
  std::printf("\nBackward error of QR solves (n=32):\n");
  auto a = gen::random_nonsingular(32, 9);
  std::vector<double> b(32, 1.0);
  auto xn = factor::solve_qr(a, b, false);
  auto xs = factor::solve_qr(a, b, true);
  std::printf("  natural  : %.2e\n  SamehKuck: %.2e\n",
              analysis::relative_residual(a, xn, b),
              analysis::relative_residual(a, xs, b));
  std::printf("\nModel depths (stages):\n%8s %10s %12s %12s %10s %10s\n",
              "n", "GE", "GQR-nat", "GQR-SK", "Csanky", "GEMS-NC");
  for (std::size_t n : {16u, 64u, 256u, 1024u}) {
    std::printf("%8zu %10zu %12zu %12zu %10zu %10zu\n", n,
                analysis::ge_sequential(n).depth,
                analysis::givens_natural(n).depth,
                analysis::givens_sameh_kuck(n).depth,
                analysis::csanky_nc(n).depth, analysis::gems_nc(n).depth);
  }
  std::printf("\n");
}

void BM_GivensNatural(benchmark::State& state) {
  auto a = gen::random_general(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto r = factor::givens_qr(a, false);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GivensNatural)->Arg(32)->Arg(64);

void BM_GivensSamehKuck(benchmark::State& state) {
  auto a = gen::random_general(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto r = factor::givens_qr_sameh_kuck(a, false);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GivensSamehKuck)->Arg(32)->Arg(64);

void BM_Householder(benchmark::State& state) {
  auto a = gen::random_general(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto r = factor::householder_qr(a, false);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Householder)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_depth();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
