// Reproduces Theorem 3.3: the PLU factorization returned by GEMS on a
// nonsingular matrix is computable in NC^2. Verifies, on random nonsingular
// integer matrices, that the LFMIS-derived permutation equals the one GEMS
// picks sequentially and that the factors coincide exactly; prints the
// depth contrast.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/depth_model.h"
#include "matrix/generators.h"
#include "nc/gems_nc.h"

namespace {

using namespace pfact;

void print_thm33() {
  std::printf("=== Theorem 3.3: GEMS on nonsingular matrices is NC^2 ===\n");
  std::printf(
      "%4s %6s | %-10s %-10s %-12s\n", "n", "seed", "perm==GEMS",
      "LU==GEMS", "rank queries");
  for (std::size_t n : {4u, 6u, 8u}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      auto a = gen::random_nonsingular_exact(n, 3, seed);
      auto ncr = nc::gems_nc_factor(a);
      auto gems = factor::gems(a);
      bool perm_ok = ncr.ok && ncr.row_perm == gems.row_perm;
      bool lu_ok = ncr.ok && ncr.l == gems.l && ncr.u == gems.u;
      std::printf("%4zu %6llu | %-10s %-10s %12zu\n", n,
                  static_cast<unsigned long long>(seed),
                  perm_ok ? "yes" : "NO", lu_ok ? "yes" : "NO",
                  ncr.rank_queries);
    }
  }
  std::printf("\nDepth model (stages):\n%8s %18s %18s\n", "n",
              "GEMS sequential", "GEMS-NC (log^2 n)");
  for (std::size_t n : {16u, 64u, 256u, 1024u}) {
    std::printf("%8zu %18zu %18zu\n", n, analysis::ge_sequential(n).depth,
                analysis::gems_nc(n).depth);
  }
  std::printf("\n");
}

void BM_GemsSequential(benchmark::State& state) {
  auto a = gen::random_nonsingular_exact(
      static_cast<std::size_t>(state.range(0)), 3, 2);
  for (auto _ : state) {
    auto f = factor::gems(a);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_GemsSequential)->Arg(4)->Arg(8);

void BM_GemsNcFactor(benchmark::State& state) {
  auto a = gen::random_nonsingular_exact(
      static_cast<std::size_t>(state.range(0)), 3, 2);
  for (auto _ : state) {
    auto f = nc::gems_nc_factor(a);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_GemsNcFactor)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  print_thm33();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
