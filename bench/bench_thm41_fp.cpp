// Reproduces the floating point content of Theorem 4.1:
//  (1) the measured per-N-block relative error under machine arithmetic —
//      the paper reports "from a minimum of eps to a maximum of 13 eps" on
//      a PC MATLAB (eps = 2.2204e-16); we measure the same statistic for
//      our N block in IEEE double;
//  (2) error amplification with simulated circuit depth ("the error will in
//      general amplify"), in double and in the SoftFloat models;
//  (3) the two "crucial properties" of fixed-size floating point the 2^m
//      renormalization rests on, verified across precisions:
//        P1: fl(a + b) = a whenever |b| < eps|a|;
//        P2: |x| < omega => machine zero;
//      and the paper's key absorption identity
//        fl(a*2^m (-) 2^{m-floor(m/2)} (1+zeta)) = a*2^m - 2^{m-floor(m/2)}
//      exactly, for |zeta| up to tens of eps, with m = m' + 10.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "core/gqr_gadgets.h"
#include "factor/givens.h"
#include "numeric/softfloat.h"

namespace {

using namespace pfact;
using numeric::Float24;
using numeric::Float53;

void print_block_error() {
  std::printf("=== Theorem 4.1 (1): per-block rounding error of the GQR N "
              "block ===\n");
  const double eps = std::ldexp(1.0, -52);  // MATLAB's eps, as in the paper
  double lo = 1e9, hi = 0;
  for (int a : {1, -1}) {
    for (int b : {1, -1}) {
      Matrix<double> m = core::gqr_nand_template().cast<double>();
      m(0, 0) = a;
      m(2, 2) = b;
      factor::givens_steps(m, 100);
      double nand = (a == 1 && b == 1) ? -1.0 : 1.0;
      double rel = std::fabs(m(4, 4) - nand);
      // The exact block constants themselves carry ~1 ulp representation
      // error; what we measure is the end-to-end deviation, like the paper.
      lo = std::min(lo, rel);
      hi = std::max(hi, rel);
    }
  }
  std::printf(
      "  relative error of NAND output in double: min %.2f eps, max %.2f "
      "eps\n  (paper, PC MATLAB: min 1 eps, max 13 eps)\n\n",
      lo / eps, hi / eps);
}

void print_amplification() {
  std::printf("=== Theorem 4.1 (2): error amplification with depth ===\n");
  std::printf("%8s %22s %22s\n", "depth", "|err| in double / eps",
              "|err| @24-bit / eps24");
  for (std::size_t depth : {1u, 10u, 100u, 1000u}) {
    core::GqrChain c = core::build_gqr_pass_chain(1, depth);
    Matrix<double> d = c.matrix.cast<double>();
    factor::givens_steps(d, 1u << 28);
    double err_d =
        std::fabs(d(c.value_pos, c.value_pos) - 1.0) / std::ldexp(1.0, -52);
    Matrix<Float24> f(d.rows(), d.cols());
    for (std::size_t i = 0; i < d.rows(); ++i)
      for (std::size_t j = 0; j < d.cols(); ++j)
        f(i, j) = Float24(c.matrix(i, j) == 0.0L
                              ? 0.0
                              : static_cast<double>(c.matrix(i, j)));
    factor::givens_steps(f, 1u << 28);
    double err_f = std::fabs(f(c.value_pos, c.value_pos).to_double() - 1.0) /
                   Float24::eps() / 2.0;
    std::printf("%8zu %22.2f %22.2f\n", depth, err_d, err_f);
  }
  std::printf("(sign decode survives polynomial depth; exact +/-1 recovery "
              "needs the 2^m blocks below)\n\n");
}

template <class F>
int absorption_sweep(const char* name, int mprime) {
  // m = m' + 10 (the paper's choice); g = floor(m/2).
  const int m = mprime + 10;
  const int g = m / 2;
  int exact = 0, total = 0;
  for (int a : {1, -1}) {
    for (int k = -13; k <= 13; ++k) {
      // zeta = k * eps; the perturbed small operand:
      F small = F(std::ldexp(1.0, m - g)) *
                (F(1.0) + F(static_cast<double>(k)) * F(F::eps()));
      F big = F(static_cast<double>(a)) * F(std::ldexp(1.0, m));
      F res = big - small;
      double expect = a * std::ldexp(1.0, m) - std::ldexp(1.0, m - g);
      ++total;
      if (res.to_double() == expect) ++exact;
    }
  }
  std::printf("  %-18s m'=%2d m=%2d: exact in %d/%d perturbation cases\n",
              name, mprime, m, exact, total);
  return exact;
}

void print_absorption() {
  std::printf(
      "=== Theorem 4.1 (3): the 2^m absorption identity across models "
      "===\n");
  std::printf("  property P1 (fl(a+b)=a for |b|<eps|a|): %s\n",
              (Float53(1.0) + Float53(Float53::eps() / 4)).to_double() == 1.0
                  ? "holds"
                  : "VIOLATED");
  std::printf("  property P2 (|x|<omega flushes to zero): %s\n",
              (Float24(Float24::omega()) * Float24(0.5)).is_zero()
                  ? "holds"
                  : "VIOLATED");
  absorption_sweep<Float24>("SoftFloat<24>", 24);
  absorption_sweep<Float53>("SoftFloat<53>", 53);
  absorption_sweep<numeric::SoftFloat<40>>("SoftFloat<40>", 40);
  std::printf(
      "  => a*2^m (-) 2^(m-g)(1+zeta) reshapes an O(eps)-dirty value into "
      "an EXACT\n     representable quantity; one more rotation against "
      "(2^-g, ...) rows has a\n     perfect-square radicand, so c = +/-1 "
      "exactly and the block emits exact\n     booleans — Theorem 4.1's "
      "mechanism.\n\n");
}

void print_perfect_square() {
  std::printf("=== perfect-square rotation: c is EXACTLY +/-1 ===\n");
  for (int a : {1, -1}) {
    // V = a*2^m - 2^(m-g) exactly; rotation radicand V^2 + (2^-g)^2 rounds
    // to V^2 (absorbed), sqrt(V^2) = |V| exactly, c = V/|V| = a exactly.
    const int m = 34, g = 17;
    Float24 v = Float24(static_cast<double>(a)) * Float24(std::ldexp(1.0, m)) -
                Float24(std::ldexp(1.0, m - g));
    Float24 h(std::ldexp(1.0, -g));
    Float24 r = sqrt(v * v + h * h);
    Float24 c = v / r;
    std::printf("  a=%+d: c = %.17g (exact: %s)\n", a, c.to_double(),
                c.to_double() == static_cast<double>(a) ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_PassChainDouble(benchmark::State& state) {
  for (auto _ : state) {
    auto c = pfact::core::build_gqr_pass_chain(
        1, static_cast<std::size_t>(state.range(0)));
    Matrix<double> d = c.matrix.cast<double>();
    pfact::factor::givens_steps(d, 1u << 28);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_PassChainDouble)->Arg(10)->Arg(100);

void BM_PassChainSoftFloat24(benchmark::State& state) {
  auto c = pfact::core::build_gqr_pass_chain(1, 20);
  Matrix<Float24> f(c.matrix.rows(), c.matrix.cols());
  for (std::size_t i = 0; i < f.rows(); ++i)
    for (std::size_t j = 0; j < f.cols(); ++j)
      f(i, j) = Float24(static_cast<double>(c.matrix(i, j)));
  for (auto _ : state) {
    Matrix<Float24> m = f;
    pfact::factor::givens_steps(m, 1u << 28);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_PassChainSoftFloat24);

}  // namespace

int main(int argc, char** argv) {
  print_block_error();
  print_amplification();
  print_absorption();
  print_perfect_square();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
