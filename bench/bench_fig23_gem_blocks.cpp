// Reproduces Figures 2-3: the D (duplicator), N (NAND) and W (wire/PASS)
// functional blocks for GEM and GEMS, printing the full contract tables —
// inputs on the leading diagonal slots, outputs on the carrier diagonals
// after the block's elimination steps, in exact arithmetic.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/gem_gadgets.h"
#include "factor/gaussian.h"
#include "numeric/rational.h"

namespace {

using namespace pfact;
using numeric::Rational;
using factor::PivotStrategy;

const char* sname(PivotStrategy s) {
  return s == PivotStrategy::kMinimalSwap ? "GEM " : "GEMS";
}

void print_blocks() {
  std::printf(
      "=== Figures 2-3: GEM/GEMS functional blocks (exact arithmetic) "
      "===\n");
  std::printf("Encodings: False=0, True=1 (paper, Section 3).\n\n");
  for (auto s :
       {PivotStrategy::kMinimalSwap, PivotStrategy::kMinimalShift}) {
    std::printf("W (wire/PASS) block, %s:   a -> out\n", sname(s));
    for (int a : {0, 1}) {
      Matrix<Rational> m = core::pass_block_template();
      m(0, 0) = a;
      factor::eliminate_steps(m, s, m.rows());
      std::printf("  a=%d  ->  carrier diagonal = %s\n", a,
                  m(3, 3).to_string().c_str());
    }
    std::printf("D (duplicator) block, %s:  a -> (out0, out1)\n", sname(s));
    for (int a : {0, 1}) {
      Matrix<Rational> m = core::dup_block_template();
      m(0, 0) = a;
      factor::eliminate_steps(m, s, m.rows());
      std::printf("  a=%d  ->  (%s, %s)\n", a, m(5, 5).to_string().c_str(),
                  m(6, 6).to_string().c_str());
    }
    std::printf("N (NAND) block, %s:       (a,b) -> NAND\n", sname(s));
    for (int a : {0, 1}) {
      for (int b : {0, 1}) {
        Matrix<Rational> m = core::nand_block_template();
        m(0, 0) = a;
        m(1, 1) = b;
        factor::eliminate_steps(m, s, m.rows());
        std::printf("  a=%d b=%d  ->  %s  (expect %d)\n", a, b,
                    m(4, 4).to_string().c_str(), 1 - a * b);
      }
    }
    std::printf("\n");
  }
}

void BM_NandBlockExact(benchmark::State& state) {
  for (auto _ : state) {
    Matrix<Rational> m = core::nand_block_template();
    m(0, 0) = 1;
    m(1, 1) = 0;
    factor::eliminate_steps(m, PivotStrategy::kMinimalShift, m.rows());
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_NandBlockExact);

void BM_NandBlockDouble(benchmark::State& state) {
  Matrix<Rational> tmpl = core::nand_block_template();
  Matrix<double> base(tmpl.rows(), tmpl.cols());
  for (std::size_t i = 0; i < tmpl.rows(); ++i)
    for (std::size_t j = 0; j < tmpl.cols(); ++j)
      base(i, j) = tmpl(i, j).to_double();
  for (auto _ : state) {
    Matrix<double> m = base;
    m(0, 0) = 1;
    m(1, 1) = 0;
    factor::eliminate_steps(m, PivotStrategy::kMinimalShift, m.rows());
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_NandBlockDouble);

}  // namespace

int main(int argc, char** argv) {
  print_blocks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
