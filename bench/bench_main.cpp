// Unified instrumented bench harness (obs::BenchSuite driver).
//
// Unlike the per-figure google-benchmark binaries, this binary's job is to
// produce the stable BENCH_pr2.json artifact: one workload per experiment
// family, each measured with warmup + repeats for wall time plus one
// instrumented run for op counters and span-derived critical-path depth.
//
//   bench_main --json BENCH_pr2.json          # write the artifact
//   bench_main --list                         # enumerate workloads
//   bench_main --filter gqr --repeats 9       # explore interactively
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "analysis/depth_model.h"
#include "circuit/builders.h"
#include "core/assembler.h"
#include "core/gep_gadgets.h"
#include "core/gqr_gadgets.h"
#include "core/simulator.h"
#include "factor/gaussian.h"
#include "factor/givens.h"
#include "factor/parallel_factor.h"
#include "factor/triangular.h"
#include "matrix/generators.h"
#include "matrix/sparse.h"
#include "nc/gems_nc.h"
#include "nc/lfmis.h"
#include "numeric/rational.h"
#include "numeric/softfloat.h"
#include "obs/bench_emitter.h"
#include "robustness/escalation.h"
#include "robustness/guarded_run.h"
#include "robustness/resilient_run.h"
#include "serve/client.h"
#include "serve/frontend.h"
#include "serve/queue.h"
#include "serve/router.h"
#include "serve/supervisor.h"
#include "serve/warm_pool.h"
#include "serve/wire.h"
#include "serve/worker_pool.h"

namespace {

using namespace pfact;

// Evaluates every input mask of `c` through the Theorem 3.1 reduction.
void gem_all_masks(const circuit::Circuit& c, factor::PivotStrategy s) {
  for (unsigned m = 0; m < (1u << c.num_inputs()); ++m) {
    std::vector<bool> in(c.num_inputs());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = (m >> i) & 1;
    circuit::CvpInstance inst{c, in};
    core::SimulationResult r = core::simulate_gem<double>(inst, s);
    if (!r.ok || r.value != inst.expected()) std::abort();
  }
}

void register_workloads(obs::BenchSuite& suite) {
  // --- Table 1 / Theorem 3.1: GEM and GEMS reduction runs -----------------
  suite.add("table1/gem-xor-suite", "table1", [] {
    gem_all_masks(circuit::xor_circuit(), factor::PivotStrategy::kMinimalSwap);
  });
  suite.add("table1/gems-xor-suite", "table1", [] {
    gem_all_masks(circuit::xor_circuit(),
                  factor::PivotStrategy::kMinimalShift);
  });
  suite.add("table1/gem-nonsingular-xor", "table1", [] {
    const circuit::Circuit c = circuit::xor_circuit();
    for (unsigned m = 0; m < 4; ++m) {
      circuit::CvpInstance inst{c, {(m & 1) != 0, (m & 2) != 0}};
      core::SimulationResult r = core::simulate_gem_nonsingular<double>(inst);
      if (!r.ok || r.value != inst.expected()) std::abort();
    }
  });

  // --- Figure 1: circuit -> A_C assembly ----------------------------------
  suite.add("fig1/assembly-parity6", "fig1", [] {
    const circuit::Circuit c = circuit::parity_circuit(6);
    circuit::CvpInstance inst{c, std::vector<bool>(6, true)};
    core::GemReduction red = core::build_gem_reduction(inst);
    if (red.matrix.rows() == 0) std::abort();
  });

  // --- Figures 2/3: GEM pivot chain on a deeper circuit -------------------
  suite.add("fig23/gem-parity5", "fig23", [] {
    gem_all_masks(circuit::parity_circuit(5),
                  factor::PivotStrategy::kMinimalSwap);
  });

  // --- Theorem 3.3: GEMS-NC factorization over exact rationals ------------
  suite.add("thm33/gems-nc-factor-n12", "thm33", [] {
    Matrix<numeric::Rational> a = gen::random_nonsingular_exact(12, 4, 20260807);
    nc::GemsNcResult r = nc::gems_nc_factor(a);
    if (!r.ok) std::abort();
  });
  suite.add("thm33/lfmis-prefix-ranks-n12", "thm33", [] {
    Matrix<numeric::Rational> a = gen::random_nonsingular_exact(12, 4, 20260807);
    std::vector<std::size_t> ranks = nc::prefix_row_ranks(a);
    if (ranks.back() != a.rows()) std::abort();
  });

  // --- Figures 4/5 / Theorem 3.4: GEP gadget chains -----------------------
  suite.add("fig45/gep-nand-chain-d8", "fig45", [] {
    for (int u : {2, 1}) {
      for (int w : {2, 1}) {
        core::GepChain chain = core::build_gep_nand_chain(u, w, 8);
        double out = core::run_gep_chain(chain);
        double expect = (u == 2 && w == 2) ? 1.0 : 2.0;
        if (std::abs(out - expect) > 1e-6) std::abort();
      }
    }
  });

  // --- Figures 6/7/8 / Theorem 4.1: GQR gadget chains ---------------------
  suite.add("fig678/gqr-nand-chain-d6", "fig678", [] {
    for (int a : {1, -1}) {
      for (int b : {1, -1}) {
        core::GqrChain chain = core::build_gqr_nand_chain(a, b, 6);
        Matrix<double> m = chain.matrix.cast<double>();
        factor::givens_steps(m, m.rows() * m.rows());
        double expect = (a == 1 && b == 1) ? -1.0 : 1.0;
        if (std::abs(m(chain.value_pos, chain.value_pos) - expect) > 1e-6)
          std::abort();
      }
    }
  });
  suite.add("thm41/gqr-softfloat53-d4", "thm41", [] {
    core::GqrChain chain = core::build_gqr_nand_chain(1, 1, 4);
    Matrix<numeric::Float53> m = chain.matrix.cast<numeric::Float53>();
    factor::givens_steps(m, m.rows() * m.rows());
    if (std::abs(to_double(m(chain.value_pos, chain.value_pos)) + 1.0) > 1e-6)
      std::abort();
  });

  // --- Factorization engines on dense random inputs -----------------------
  suite.add("factor/gep-partial-n48", "tradeoff", [] {
    Matrix<double> a = gen::random_general(48, 7);
    factor::LuResult<double> f =
        factor::ge_factor(a, factor::PivotStrategy::kPartial);
    if (!f.ok) std::abort();
  });
  suite.add("factor/gqr-sameh-kuck-n32", "parallel-depth", [] {
    Matrix<double> a = gen::random_general(32, 11);
    factor::QrResult<double> f = factor::givens_qr_sameh_kuck(std::move(a));
    if (f.rotations == 0) std::abort();
  });
  suite.add("factor/refined-solve-wilkinson-n32", "tradeoff", [] {
    Matrix<double> a = gen::wilkinson_growth(32);
    std::vector<double> b(32, 1.0);
    std::vector<double> x =
        factor::solve_plu_refined(a, b, factor::PivotStrategy::kMinimalSwap);
    if (x.size() != 32) std::abort();
  });

  // --- Thread-pool execution (span depth vs structural depth) -------------
  suite.add("parallel/ge-rows-n48", "parallel-depth", [] {
    Matrix<double> a = gen::random_general(48, 7);
    factor::LuResult<double> f = factor::ge_factor_parallel_rows(
        std::move(a), factor::PivotStrategy::kPartial);
    if (!f.ok) std::abort();
  });
  suite.add("parallel/gqr-stages-n32", "parallel-depth", [] {
    Matrix<double> a = gen::random_general(32, 11);
    factor::QrResult<double> f =
        factor::givens_qr_sameh_kuck_parallel(std::move(a));
    if (f.rotations == 0) std::abort();
  });

  // --- Robustness: guarded run incl. certificate + metrics ----------------
  suite.add("robustness/guarded-gem-xor", "robustness", [] {
    const circuit::Circuit c = circuit::xor_circuit();
    circuit::CvpInstance inst{c, {true, false}};
    robustness::RunReport rep = robustness::guarded_simulate_gem<double>(
        inst, factor::PivotStrategy::kMinimalSwap);
    if (!rep.ok()) std::abort();
  });

  // --- Resilience: checkpoint overhead + supervised retry/escalation ------
  // Acceptance-scale overhead: the Table 1 GEM xor suite (the reduction
  // runs the paper's theorems are about) with save-every-k checkpointing.
  // These runs are ~15 elimination steps, so k=64 never snapshots and its
  // cost is the bare hook check: the save-every-64 lane must stay within
  // 10% of the no-checkpoint lane.
  auto gem_xor_checkpointed = [](std::size_t every) {
    const circuit::Circuit c = circuit::xor_circuit();
    for (unsigned m = 0; m < 4; ++m) {
      circuit::CvpInstance inst{c, {(m & 1) != 0, (m & 2) != 0}};
      robustness::CheckpointStore store;
      robustness::CheckpointConfig ckpt;
      ckpt.every = every;
      ckpt.store = every ? &store : nullptr;
      robustness::RunReport rep = robustness::guarded_simulate_gem<double>(
          inst, factor::PivotStrategy::kMinimalSwap, {}, {}, ckpt);
      if (!rep.ok() || rep.value != inst.expected()) std::abort();
    }
  };
  suite.add("resilience/gem-xor-no-ckpt", "resilience",
            [gem_xor_checkpointed] { gem_xor_checkpointed(0); });
  suite.add("resilience/gem-xor-ckpt-k1", "resilience",
            [gem_xor_checkpointed] { gem_xor_checkpointed(1); });
  suite.add("resilience/gem-xor-ckpt-k8", "resilience",
            [gem_xor_checkpointed] { gem_xor_checkpointed(8); });
  suite.add("resilience/gem-xor-ckpt-k64", "resilience",
            [gem_xor_checkpointed] { gem_xor_checkpointed(64); });

  // Stress-scale overhead: dense elimination, where every step does O(n^2)
  // work and every snapshot encodes the full n^2 state, at save-every-k
  // for k in {1, 8, 64} against the no-checkpoint baseline; the
  // instrumented pass records checkpoint-saves and checkpoint-bytes
  // counters into the JSON next to the wall times.
  auto dense_checkpointed = [](std::size_t every) {
    Matrix<double> a = gen::random_general(96, 13);
    robustness::CheckpointStore store;
    factor::CheckpointHook<Matrix<double>> hook;
    hook.every = every;
    hook.save = [&store](std::size_t next_step, const Matrix<double>& snap,
                         const Permutation* perm,
                         const factor::PivotTrace& trace) {
      std::string blob = robustness::encode_checkpoint_parts(
          "bench/ge-dense", 0, next_step, snap, perm, trace);
      PFACT_COUNT(kCheckpointSaves);
      PFACT_COUNT_N(kCheckpointBytes, blob.size());
      store.put(next_step, std::move(blob));
    };
    Permutation perm(a.rows());
    factor::eliminate_steps(a, factor::PivotStrategy::kPartial, a.rows(),
                            &perm, {}, every ? &hook : nullptr);
    if (every && store.empty()) std::abort();
  };
  suite.add("resilience/ge-dense-n96-no-ckpt", "resilience",
            [dense_checkpointed] { dense_checkpointed(0); });
  suite.add("resilience/ge-dense-n96-ckpt-k1", "resilience",
            [dense_checkpointed] { dense_checkpointed(1); });
  suite.add("resilience/ge-dense-n96-ckpt-k8", "resilience",
            [dense_checkpointed] { dense_checkpointed(8); });
  suite.add("resilience/ge-dense-n96-ckpt-k64", "resilience",
            [dense_checkpointed] { dense_checkpointed(64); });
  suite.add("resilience/supervised-flip-escalation", "resilience", [] {
    robustness::ReductionTask task;
    task.algorithm = robustness::Algorithm::kGep;
    task.u = 2;
    task.w = 2;
    task.depth = 1;
    robustness::ResilientOptions opt;
    opt.ladder = {robustness::Substrate::kSoftFloat53,
                  robustness::Substrate::kRational};
    opt.retry.max_attempts = 2;
    robustness::FaultPlan flip;
    flip.fault = robustness::FaultClass::kRoundingFlip;
    opt.fault_for_attempt = [flip](std::size_t) { return flip; };
    robustness::ResilientReport rep = robustness::resilient_run(task, opt);
    if (!rep.certified || rep.certified_by != robustness::Substrate::kRational)
      std::abort();
  });

  // --- Serve: process-isolation overhead ----------------------------------
  // The Table 1 GEM xor suite again, but every attempt in a forked,
  // rlimit-sandboxed worker through the supervisor. The delta against
  // serve/gem-xor-inproc (the same tasks through in-process resilient_run
  // at the same k=8 cadence) is the full isolation bill: fork + request
  // ship + checkpoint frames over the pipe + result frame + reap. The
  // instrumented pass records the worker-lifecycle counters
  // (worker-spawns etc.) into the JSON next to the wall times.
  auto gem_xor_tasks = [] {
    std::vector<robustness::ReductionTask> tasks;
    const circuit::Circuit c = circuit::xor_circuit();
    for (unsigned m = 0; m < 4; ++m) {
      robustness::ReductionTask task;
      task.algorithm = robustness::Algorithm::kGem;
      task.instance = circuit::CvpInstance{c, {(m & 1) != 0, (m & 2) != 0}};
      tasks.push_back(std::move(task));
    }
    return tasks;
  };
  suite.add("serve/gem-xor-inproc", "serve", [gem_xor_tasks] {
    for (const robustness::ReductionTask& task : gem_xor_tasks()) {
      robustness::CheckpointStore store;
      robustness::ResilientOptions opt;
      opt.checkpoint_every = 8;
      opt.store = &store;
      robustness::ResilientReport rep = robustness::resilient_run(task, opt);
      if (!rep.certified || rep.value != task.expected()) std::abort();
    }
  });
  auto gem_xor_supervised = [gem_xor_tasks](std::size_t every) {
    serve::WorkerPool pool;
    for (const robustness::ReductionTask& task : gem_xor_tasks()) {
      robustness::CheckpointStore store;
      serve::SupervisorOptions so;
      so.checkpoint_every = every;
      so.store = &store;
      serve::SupervisedReport rep = serve::supervised_run(pool, task, so);
      if (!rep.certified || rep.value != task.expected()) std::abort();
    }
  };
  suite.add("serve/gem-xor-supervised-k1", "serve",
            [gem_xor_supervised] { gem_xor_supervised(1); });
  suite.add("serve/gem-xor-supervised-k8", "serve",
            [gem_xor_supervised] { gem_xor_supervised(8); });
  suite.add("serve/gem-xor-supervised-k64", "serve",
            [gem_xor_supervised] { gem_xor_supervised(64); });

  // The same supervised suite over a pre-forked WarmPool shared across
  // repeats (warmup forks it; measured passes reuse live workers). The
  // delta against gem-xor-supervised-k* is the per-job fork+exec bill —
  // most visible at sparse checkpoint cadences (k=64), where wall time is
  // not dominated by streamed saves.
  auto warm_pool = std::make_shared<std::unique_ptr<serve::WarmPool>>();
  auto gem_xor_warm = [gem_xor_tasks, warm_pool](std::size_t every) {
    if (!*warm_pool) {
      serve::WarmPoolOptions wo;
      wo.workers = 2;
      wo.recycle_after = 0;  // steady state: no quota churn mid-measurement
      *warm_pool = std::make_unique<serve::WarmPool>(wo);
    }
    for (const robustness::ReductionTask& task : gem_xor_tasks()) {
      robustness::CheckpointStore store;
      serve::SupervisorOptions so;
      so.checkpoint_every = every;
      so.store = &store;
      serve::SupervisedReport rep = serve::supervised_run(**warm_pool, task, so);
      if (!rep.certified || rep.value != task.expected()) std::abort();
    }
  };
  suite.add("serve/gem-xor-warm-k1", "serve",
            [gem_xor_warm] { gem_xor_warm(1); });
  suite.add("serve/gem-xor-warm-k8", "serve",
            [gem_xor_warm] { gem_xor_warm(8); });
  suite.add("serve/gem-xor-warm-k64", "serve",
            [gem_xor_warm] { gem_xor_warm(64); });

  // Steady-state repeat traffic through the full service: warmup fills the
  // verified result cache, measured passes are pure cache hits — no queue
  // wait, no worker, no checkpoint stream. This is the k=1 fast path the
  // cold numbers above cannot reach.
  auto service = std::make_shared<std::unique_ptr<serve::ReductionService>>();
  suite.add("serve/gem-xor-service-cache-hit", "serve",
            [gem_xor_tasks, service] {
              if (!*service) {
                serve::ServiceOptions so;
                so.dispatchers = 2;
                so.pool.workers = 2;
                *service = std::make_unique<serve::ReductionService>(so);
              }
              for (const robustness::ReductionTask& task : gem_xor_tasks()) {
                const serve::ServiceResponse resp = (*service)->run(task);
                if (resp.admission != serve::Admission::kAccepted ||
                    !resp.report.certified ||
                    resp.report.value != task.expected()) {
                  std::abort();
                }
              }
            });

  // Pipe transport in isolation: the dense n=96 elimination of
  // resilience/ge-dense-n96-ckpt-k*, but every snapshot is framed, shipped
  // through a real pipe, envelope-verified and filed by a reader thread —
  // the wire cost of checkpoint streaming WITHOUT the fork. Each n=96 blob
  // (~73 KB) overflows the 64 KB pipe buffer, so writer and reader really
  // interleave, exactly as a worker and its supervisor do.
  auto dense_pipe = [](std::size_t every) {
    int fds[2];
    if (::pipe(fds) != 0) std::abort();
    robustness::CheckpointStore store;
    std::thread reader([rd = fds[0], &store] {
      for (;;) {
        serve::FrameType type = serve::FrameType::kRequest;
        std::string payload;
        if (serve::read_frame(rd, type, payload) != serve::WireStatus::kOk)
          break;
        std::uint64_t step = 0;
        std::string blob;
        if (!serve::decode_checkpoint_frame(payload, step, blob))
          std::abort();
        if (robustness::validate_checkpoint_envelope(blob) !=
            robustness::CheckpointStatus::kOk) {
          std::abort();
        }
        store.put(step, std::move(blob));
      }
    });
    Matrix<double> a = gen::random_general(96, 13);
    factor::CheckpointHook<Matrix<double>> hook;
    hook.every = every;
    hook.save = [wr = fds[1]](std::size_t next_step,
                              const Matrix<double>& snap,
                              const Permutation* perm,
                              const factor::PivotTrace& trace) {
      std::string blob = robustness::encode_checkpoint_parts(
          "bench/ge-dense", 0, next_step, snap, perm, trace);
      PFACT_COUNT(kCheckpointSaves);
      PFACT_COUNT_N(kCheckpointBytes, blob.size());
      if (serve::write_frame(
              wr, serve::FrameType::kCheckpoint,
              serve::encode_checkpoint_frame(next_step, blob)) !=
          serve::WireStatus::kOk) {
        std::abort();
      }
    };
    Permutation perm(a.rows());
    factor::eliminate_steps(a, factor::PivotStrategy::kPartial, a.rows(),
                            &perm, {}, &hook);
    ::close(fds[1]);
    reader.join();
    ::close(fds[0]);
    if (store.empty()) std::abort();
  };
  suite.add("serve/ge-dense-n96-pipe-k1", "serve",
            [dense_pipe] { dense_pipe(1); });
  suite.add("serve/ge-dense-n96-pipe-k8", "serve",
            [dense_pipe] { dense_pipe(8); });
  suite.add("serve/ge-dense-n96-pipe-k64", "serve",
            [dense_pipe] { dense_pipe(64); });

  // --- Socket front end (BENCH_pr8.json): the network transport bill ------
  // The same GEM xor suite once more, but through a real localhost Unix
  // socket: client connect + kRequest frame + poll()-driven listener +
  // admission + kResponse frame + decode. Three rungs:
  //   socket-gem-xor-cached      cache-hit answers; delta against
  //                              serve/gem-xor-service-cache-hit is the pure
  //                              socket round-trip bill.
  //   socket-gem-xor-fresh       cache disabled, every submit re-factors in
  //                              a warm worker; delta against
  //                              serve/gem-xor-warm-k8 is the socket bill
  //                              riding a real job.
  //   socket-gem-xor-torn-retry  attempt 1 sabotaged with a torn frame, so
  //                              every answer costs two conversations plus a
  //                              reconnect; delta against socket-gem-xor-
  //                              cached is the client retry machinery.
  // Rigs are built lazily (first call = warmup pass) and shared across
  // repeats, mirroring the warm-pool idiom above.
  struct SocketRig {
    std::unique_ptr<serve::ReductionService> service;
    std::unique_ptr<serve::Frontend> frontend;
  };
  auto make_socket_rig = [](std::size_t cache_capacity) {
    auto rig = std::make_unique<SocketRig>();
    serve::ServiceOptions so;
    so.dispatchers = 2;
    so.pool.workers = 2;
    so.cache_capacity = cache_capacity;
    so.supervisor.checkpoint_every = 8;
    rig->service = std::make_unique<serve::ReductionService>(so);
    static int rig_counter = 0;
    serve::FrontendOptions fo;
    fo.unix_path = "/tmp/pfact_bench_sock_" + std::to_string(::getpid()) +
                   "_" + std::to_string(++rig_counter) + ".sock";
    rig->frontend = std::make_unique<serve::Frontend>(*rig->service, fo);
    if (!rig->frontend->running()) std::abort();
    return rig;
  };
  auto socket_submit = [gem_xor_tasks](SocketRig& rig, serve::NetFault fault) {
    serve::ClientOptions co;
    co.unix_path = rig.frontend->unix_path();
    co.retry.max_attempts = 3;
    co.retry.base_delay = std::chrono::milliseconds{1};
    // Measure the reconnect/reship work, not the backoff sleep.
    co.sleeper = [](std::chrono::milliseconds) {};
    co.fault.fault = fault;
    co.fault.seed = 11;
    co.fault.on_attempt = fault == serve::NetFault::kNone ? 0 : 1;
    serve::Client client(co);
    for (const robustness::ReductionTask& task : gem_xor_tasks()) {
      const serve::ClientResult res = client.submit(task);
      if (!res.ok || !res.response.certified ||
          res.response.value != task.expected()) {
        std::abort();
      }
    }
  };
  auto cached_rig = std::make_shared<std::unique_ptr<SocketRig>>();
  suite.add("serve/socket-gem-xor-cached", "serve",
            [make_socket_rig, socket_submit, cached_rig] {
              if (!*cached_rig) *cached_rig = make_socket_rig(128);
              socket_submit(**cached_rig, serve::NetFault::kNone);
            });
  auto fresh_rig = std::make_shared<std::unique_ptr<SocketRig>>();
  suite.add("serve/socket-gem-xor-fresh", "serve",
            [make_socket_rig, socket_submit, fresh_rig] {
              if (!*fresh_rig) *fresh_rig = make_socket_rig(0);
              socket_submit(**fresh_rig, serve::NetFault::kNone);
            });
  auto torn_rig = std::make_shared<std::unique_ptr<SocketRig>>();
  suite.add("serve/socket-gem-xor-torn-retry", "serve",
            [make_socket_rig, socket_submit, torn_rig] {
              if (!*torn_rig) *torn_rig = make_socket_rig(128);
              socket_submit(**torn_rig, serve::NetFault::kTornFrame);
            });

  // --- Sharded router (BENCH_pr10.json): the self-healing fleet bill ------
  // The GEM xor suite once more, now through the ShardRouter: consistent-
  // hash home pick + per-shard Unix socket + failover ring walk. Five rungs:
  //   shard-gem-xor-cached-s1    one shard; delta against serve/socket-gem-
  //                              xor-cached is the pure router bill (hash,
  //                              admission ledger, status bookkeeping).
  //   shard-gem-xor-cached-s3    three shards; delta against -s1 is the
  //                              cost (or win) of spreading the same keys
  //                              over a fleet of private caches.
  //   shard-gem-xor-fresh-s3     caches off, every submit re-factors.
  //   shard-failover-warm        SIGKILL the home shard, answer through a
  //                              survivor, wait for the healed fleet: one
  //                              full kill -> failover -> restart cycle.
  //   shard-brownout-shed        one shard down with a long restart backoff:
  //                              shed three fresh keys, serve one warm key,
  //                              then heal — the degraded-mode service bill.
  // Rigs are built lazily (first call = warmup pass) and shared across
  // repeats, like the socket rigs above.
  auto make_shard_rig = [](std::size_t shards, std::size_t cache_capacity,
                           std::chrono::milliseconds restart_delay) {
    serve::RouterOptions ro;
    ro.shards = shards;
    ro.service.dispatchers = 2;
    ro.service.pool.workers = 2;
    ro.service.cache_capacity = cache_capacity;
    ro.service.supervisor.checkpoint_every = 8;
    ro.restart.base_delay = restart_delay;
    ro.restart.max_delay = restart_delay * 8;
    auto router = std::make_unique<serve::ShardRouter>(ro);
    if (!router->wait_all_serving(std::chrono::seconds(10))) std::abort();
    return router;
  };
  auto route_all = [gem_xor_tasks](serve::ShardRouter& router) {
    for (const robustness::ReductionTask& task : gem_xor_tasks()) {
      const serve::RouteResult res = router.submit(task);
      if ((res.status != serve::RouterStatus::kRouted &&
           res.status != serve::RouterStatus::kFailedOver) ||
          !res.response.certified ||
          res.response.value != task.expected()) {
        std::abort();
      }
    }
  };
  auto shard_s1 = std::make_shared<std::unique_ptr<serve::ShardRouter>>();
  suite.add("serve/shard-gem-xor-cached-s1", "pr10",
            [make_shard_rig, route_all, shard_s1] {
              if (!*shard_s1)
                *shard_s1 = make_shard_rig(1, 128, std::chrono::milliseconds{1});
              route_all(**shard_s1);
            });
  auto shard_s3 = std::make_shared<std::unique_ptr<serve::ShardRouter>>();
  suite.add("serve/shard-gem-xor-cached-s3", "pr10",
            [make_shard_rig, route_all, shard_s3] {
              if (!*shard_s3)
                *shard_s3 = make_shard_rig(3, 128, std::chrono::milliseconds{1});
              route_all(**shard_s3);
            });
  auto shard_fresh = std::make_shared<std::unique_ptr<serve::ShardRouter>>();
  suite.add("serve/shard-gem-xor-fresh-s3", "pr10",
            [make_shard_rig, route_all, shard_fresh] {
              if (!*shard_fresh)
                *shard_fresh =
                    make_shard_rig(3, 0, std::chrono::milliseconds{1});
              route_all(**shard_fresh);
            });
  auto shard_failover = std::make_shared<std::unique_ptr<serve::ShardRouter>>();
  suite.add(
      "serve/shard-failover-warm", "pr10",
      [make_shard_rig, gem_xor_tasks, shard_failover] {
        if (!*shard_failover)
          *shard_failover =
              make_shard_rig(3, 128, std::chrono::milliseconds{1});
        serve::ShardRouter& router = **shard_failover;
        const robustness::ReductionTask task = gem_xor_tasks()[0];
        // The heal barrier below is eventually consistent, so the home can
        // still be mid-respawn (pid -1) when the next repeat starts: retry
        // until the kill lands on a live pid.
        const std::size_t home = router.home_shard(task);
        const auto kill_deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(10);
        for (;;) {
          if (router.shard_pid(home) > 0 &&
              router.kill_shard_for_testing(home, SIGKILL)) {
            break;
          }
          if (std::chrono::steady_clock::now() > kill_deadline) std::abort();
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        const serve::RouteResult res = router.submit(task);
        if ((res.status != serve::RouterStatus::kRouted &&
             res.status != serve::RouterStatus::kFailedOver) ||
            !res.response.certified ||
            res.response.value != task.expected()) {
          std::abort();
        }
        if (!router.wait_all_serving(std::chrono::seconds(10))) std::abort();
      });
  auto shard_brownout = std::make_shared<std::unique_ptr<serve::ShardRouter>>();
  suite.add(
      "serve/shard-brownout-shed", "pr10",
      [make_shard_rig, gem_xor_tasks, shard_brownout] {
        const std::vector<robustness::ReductionTask> tasks = gem_xor_tasks();
        if (!*shard_brownout) {
          // A long restart backoff holds the fleet degraded for the whole
          // shed batch; the warm key is cached on its home before any kill.
          *shard_brownout =
              make_shard_rig(3, 128, std::chrono::milliseconds{200});
          const serve::RouteResult warm = (*shard_brownout)->submit(tasks[0]);
          if (warm.status != serve::RouterStatus::kRouted) std::abort();
        }
        serve::ShardRouter& router = **shard_brownout;
        // Down a shard that is NOT the warm key's home, then wait for the
        // supervision tick to notice the corpse and latch the brownout.
        const std::size_t victim =
            (router.home_shard(tasks[0]) + 1) % router.shard_count();
        const auto kill_deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(10);
        for (;;) {
          if (router.shard_pid(victim) > 0 &&
              router.kill_shard_for_testing(victim, SIGKILL)) {
            break;
          }
          if (std::chrono::steady_clock::now() > kill_deadline) std::abort();
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        const auto latch_deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(2);
        while (!router.browned_out()) {
          if (std::chrono::steady_clock::now() > latch_deadline) std::abort();
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        for (std::size_t i = 1; i < tasks.size(); ++i) {
          const serve::RouteResult shed = router.submit(tasks[i]);
          if (shed.status != serve::RouterStatus::kBrownoutShed ||
              shed.response.status != serve::FrontendStatus::kOverloaded) {
            std::abort();
          }
        }
        const serve::RouteResult warm = router.submit(tasks[0]);
        if (warm.status != serve::RouterStatus::kRouted ||
            !warm.response.certified ||
            warm.response.value != tasks[0].expected()) {
          std::abort();
        }
        if (!router.wait_all_serving(std::chrono::seconds(10))) std::abort();
      });

  // --- Sparse backend (BENCH_pr7.json): dense-vs-sparse deltas ------------
  // The same guarded GEM workload (deep NAND chain, depth 40 — the largest
  // gate count any dense lane in this file reaches) through both storage
  // backends, with save-every-8 checkpointing. The guarded driver counts
  // checkpoint-saves and checkpoint-bytes, so the two JSON rows carry the
  // checkpoint-bytes delta directly: a sparse-CSR blob encodes nnz entries
  // while the dense blob encodes rows*cols scalars of a block-banded matrix
  // that is almost entirely zeros.
  auto gem_chain_guarded = [](std::size_t depth, robustness::Backend backend,
                              std::size_t every) {
    robustness::ReductionTask task;
    task.algorithm = robustness::Algorithm::kGem;
    task.backend = backend;
    task.instance =
        circuit::CvpInstance{circuit::deep_chain_circuit(depth), {true, true}};
    robustness::CheckpointStore store;
    robustness::CheckpointConfig ckpt;
    ckpt.every = every;
    ckpt.store = &store;
    robustness::GuardLimits limits;
    // The depth-400 chain's fanout-normalized A_C has order ~184k — above
    // the default admission ceiling, which exists to refuse unbounded dense
    // work. Raising it is exactly what the sparse backend buys.
    limits.max_order = std::size_t{1} << 18;
    robustness::RunReport rep = robustness::run_on_substrate(
        task, robustness::Substrate::kDouble, limits, {}, ckpt);
    if (!rep.ok() || rep.value != task.expected() || store.empty())
      std::abort();
  };
  // depth 40 -> order 2265: two saves each; the dense blob is the full
  // 2265^2 scalar grid (~41 MB), the sparse blob its ~3.9k nonzeros.
  suite.add("sparse/gem-chain-d40-dense", "pr7",
            [gem_chain_guarded] {
              gem_chain_guarded(40, robustness::Backend::kDense, 1024);
            });
  suite.add("sparse/gem-chain-d40-sparse", "pr7",
            [gem_chain_guarded] {
              gem_chain_guarded(40, robustness::Backend::kSparse, 1024);
            });

  // The scale the dense backend cannot reach: 10x the gate count of the
  // dense lane above (order ~184k after fanout normalization), end-to-end
  // through the guarded sparse GEM driver with two mid-run saves. There is
  // deliberately no dense twin — its matrix alone would be ~273 GB.
  suite.add("sparse/gem-chain-d400-sparse", "pr7",
            [gem_chain_guarded] {
              gem_chain_guarded(400, robustness::Backend::kSparse, 65536);
            });

  // Peak-memory accounting for the acceptance claim "10x the gates within
  // the dense memory envelope": builds A_C for the depth-40 chain densely
  // and for the depth-400 chain sparsely, records both storage footprints
  // as counters (dense-storage-bytes / sparse-storage-bytes in the JSON),
  // and aborts if the 10x sparse reduction ever outgrows the 1x dense one.
  suite.add("sparse/envelope-chain-d400-vs-d40", "pr7", [] {
    const circuit::Circuit small = circuit::deep_chain_circuit(40);
    const circuit::Circuit big = circuit::deep_chain_circuit(400);
    core::GemReduction dense =
        core::build_gem_reduction({small, {true, true}});
    core::SparseGemReduction sparse =
        core::build_gem_reduction_sparse({big, {true, true}});
    const std::size_t dense_bytes =
        dense.matrix.rows() * dense.matrix.cols() * sizeof(double);
    const std::size_t sparse_bytes =
        sparse.matrix.nnz() * (sizeof(double) + sizeof(std::size_t)) +
        (sparse.matrix.rows() + 1) * sizeof(std::size_t);
    PFACT_COUNT_N(kDenseStorageBytes, dense_bytes);
    PFACT_COUNT_N(kSparseStorageBytes, sparse_bytes);
    if (sparse_bytes > dense_bytes) std::abort();
  });
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json FILE] [--filter SUBSTR] [--warmup N] "
               "[--repeats N] [--list]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string filter;
  std::size_t warmup = 2;
  std::size_t repeats = 5;
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--json") {
      json_path = next();
    } else if (arg == "--filter") {
      filter = next();
    } else if (arg == "--warmup") {
      warmup = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--repeats") {
      repeats = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--list") {
      list = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (repeats == 0) repeats = 1;

  obs::BenchSuite suite;
  register_workloads(suite);

  if (list) {
    for (const obs::BenchSpec& s : suite.specs()) {
      std::printf("%-36s [%s]\n", s.name.c_str(), s.experiment.c_str());
    }
    return 0;
  }

  std::vector<obs::BenchMeasurement> results =
      suite.run(warmup, repeats, filter, &std::cerr);
  if (results.empty()) {
    std::fprintf(stderr, "no workload matches filter '%s'\n", filter.c_str());
    return 1;
  }

  const std::string json = obs::BenchSuite::to_json(results, warmup, repeats);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    out << json << '\n';
    std::fprintf(stderr, "wrote %s (%zu workloads)\n", json_path.c_str(),
                 results.size());
  } else {
    std::cout << json << '\n';
  }
  return 0;
}
