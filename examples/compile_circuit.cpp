// CLI driver for the paper's reduction: compile a NAND circuit (text
// format, see src/circuit/io.h) into the matrix A_C and evaluate it by
// Gaussian elimination with minimal pivoting.
//
//   compile_circuit <file> [gem|gems|gem-nonsingular] [bit bit ...]
//
// With no file argument, runs a built-in XOR demo.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "circuit/builders.h"
#include "circuit/io.h"
#include "core/simulator.h"

namespace {

int run(const pfact::circuit::CvpInstance& inst, const std::string& mode) {
  using namespace pfact;
  core::SimulationResult res;
  if (mode == "gem-nonsingular") {
    res = core::simulate_gem_nonsingular<double>(inst);
  } else {
    auto strat = mode == "gem" ? factor::PivotStrategy::kMinimalSwap
                               : factor::PivotStrategy::kMinimalShift;
    res = core::simulate_gem<double>(inst, strat);
  }
  std::printf("mode=%s  order nu=%zu  decoded=%s  expected=%s  %s\n",
              mode.c_str(), res.order, res.ok ? (res.value ? "1" : "0") : "?",
              inst.expected() ? "1" : "0",
              res.ok && res.value == inst.expected() ? "OK" : "MISMATCH");
  return res.ok && res.value == inst.expected() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfact;
  std::string mode = "gems";
  circuit::ParsedInstance parsed{circuit::Circuit(2, {{0, 1}}), {}};
  if (argc >= 2) {
    std::ifstream f(argv[1]);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    try {
      parsed = circuit::parse_circuit_text(ss.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  } else {
    std::printf("no file given: using built-in XOR demo\n");
    parsed.circuit = circuit::xor_circuit();
  }
  if (argc >= 3) mode = argv[2];
  std::vector<bool> bits;
  if (argc >= 4) {
    for (int i = 3; i < argc; ++i) bits.push_back(argv[i][0] == '1');
  } else if (parsed.inputs) {
    bits = *parsed.inputs;
  }
  int rc = 0;
  if (!bits.empty()) {
    rc = run({parsed.circuit, bits}, mode);
  } else {
    // No assignment: sweep all (up to 16 inputs).
    std::size_t k = parsed.circuit.num_inputs();
    if (k > 16) {
      std::fprintf(stderr, "too many inputs to sweep; give an assignment\n");
      return 2;
    }
    for (unsigned m = 0; m < (1u << k); ++m) {
      std::vector<bool> in(k);
      for (std::size_t i = 0; i < k; ++i) in[i] = (m >> i) & 1;
      rc |= run({parsed.circuit, in}, mode);
    }
  }
  return rc;
}
