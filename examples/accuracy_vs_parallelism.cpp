// The tradeoff the paper's results support, in one runnable experiment:
// solving the same ill-conditioned systems with
//   - GEP (stable, inherently sequential: Theorem 3.4),
//   - GQR in the Sameh-Kuck parallel ordering (stable, O(n) stages,
//     inherently sequential in the natural order: Theorem 4.1),
//   - Csanky's NC-depth inversion (fast parallel, numerically disastrous).
#include <cmath>
#include <cstdio>

#include "analysis/depth_model.h"
#include "analysis/error_analysis.h"
#include "factor/triangular.h"
#include "matrix/generators.h"
#include "nc/csanky.h"

int main() {
  using namespace pfact;

  std::printf("Solving graded systems: backward error vs parallel depth\n");
  std::printf("%4s | %10s %10s %10s | depth: %6s %6s %6s\n", "n", "GEP",
              "GQR-SK", "Csanky", "GEP", "GQR-SK", "Csanky");
  for (std::size_t n : {8u, 16u, 24u, 32u}) {
    Matrix<double> a = gen::graded(n, 0.5);
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = std::cos(double(i));
    auto x1 = factor::solve_plu(a, b, factor::PivotStrategy::kPartial);
    auto x2 = factor::solve_qr(a, b, /*sameh_kuck=*/true);
    double e1 = analysis::relative_residual(a, x1, b);
    double e2 = analysis::relative_residual(a, x2, b);
    double e3;
    try {
      auto x3 = nc::csanky_solve(a, b);
      e3 = analysis::relative_residual(a, x3, b);
    } catch (...) {
      e3 = INFINITY;
    }
    std::printf("%4zu | %10.2e %10.2e %10.2e |        %6zu %6zu %6zu\n", n,
                e1, e2, e3, analysis::ge_sequential(n).depth,
                analysis::givens_sameh_kuck(n).depth,
                analysis::csanky_nc(n).depth);
  }
  std::printf(
      "\nCsanky reaches polylog depth but loses most significant digits\n"
      "already at modest n -- while the paper proves the accurate "
      "algorithms\n(GEP, GEM/GEMS, GQR) cannot be parallelized below "
      "polynomial depth\nunless P = NC. That is the tradeoff.\n");
  return 0;
}
