// The introduction's claim that GQR "is especially suitable for solving
// large sparse systems, given its ability to annihilate selected entries of
// the input matrix at very low cost": Givens rotations touch exactly two
// rows, so structured sparsity survives.
//
// We triangularize (a) a tridiagonal matrix — n-1 rotations instead of
// n(n-1)/2 — and (b) an upper-Hessenberg matrix, and we surgically
// annihilate one chosen entry of a sparse matrix, counting fill-in.
#include <cstdio>

#include "factor/givens.h"
#include "matrix/matrix.h"

namespace {

std::size_t nonzeros(const pfact::Matrix<double>& a) {
  std::size_t nz = 0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (a(i, j) != 0.0) ++nz;
  return nz;
}

}  // namespace

int main() {
  using namespace pfact;
  const std::size_t n = 12;

  Matrix<double> tri(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    tri(i, i) = 4.0;
    if (i > 0) tri(i, i - 1) = 1.0;
    if (i + 1 < n) tri(i, i + 1) = 1.0;
  }
  auto rt = factor::givens_qr(tri, false);
  std::printf("tridiagonal %zux%zu: %zu rotations (dense bound %zu), "
              "R nonzeros %zu\n",
              n, n, rt.rotations, n * (n - 1) / 2, nonzeros(rt.r));

  Matrix<double> hess(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = (i == 0 ? 0 : i - 1); j < n; ++j)
      hess(i, j) = 1.0 + static_cast<double>((i * 7 + j * 3) % 5);
  auto rh = factor::givens_qr(hess, false);
  std::printf("hessenberg  %zux%zu: %zu rotations (one per subdiagonal "
              "entry)\n",
              n, n, rh.rotations);

  // Surgical annihilation: zero A(7,2) of a sparse matrix with one rotation
  // — only rows 2 and 7 change.
  Matrix<double> s(n, n);
  for (std::size_t i = 0; i < n; ++i) s(i, i) = 2.0;
  s(7, 2) = 1.0;
  s(3, 9) = 5.0;
  std::size_t before = nonzeros(s);
  factor::detail::apply_givens<double>(s, nullptr, 2, 7);
  std::printf("surgical annihilate (7,2): nonzeros %zu -> %zu, entry now "
              "%.1e\n",
              before, nonzeros(s), s(7, 2));
  return 0;
}
