// Quickstart: the pfact public API in one file.
//
// Builds a small linear system, factors it with the paper's four pivoting
// strategies and both QR algorithms, solves it, and prints residuals and
// pivot traces — the objects the paper's complexity results are about.
#include <cstdio>

#include "analysis/error_analysis.h"
#include "factor/gaussian.h"
#include "factor/givens.h"
#include "factor/householder.h"
#include "factor/triangular.h"
#include "matrix/generators.h"

int main() {
  using namespace pfact;
  using factor::PivotStrategy;

  const std::size_t n = 8;
  Matrix<double> a = gen::random_nonsingular(n, 42);
  std::vector<double> b(n, 1.0);

  std::printf("pfact quickstart: solving an %zux%zu system\n\n", n, n);

  for (auto s : {PivotStrategy::kNone, PivotStrategy::kPartial,
                 PivotStrategy::kMinimalSwap, PivotStrategy::kMinimalShift}) {
    auto f = factor::ge_factor(a, s);
    if (!f.ok) {
      std::printf("%-5s failed (zero pivot without pivoting)\n",
                  factor::pivot_strategy_name(s));
      continue;
    }
    auto x = factor::solve_plu(a, b, s);
    std::printf("%-5s row swaps: %zu   backward error: %.2e\n",
                factor::pivot_strategy_name(s), f.trace.swap_count(),
                analysis::relative_residual(a, x, b));
  }

  auto qr = factor::givens_qr(a, /*accumulate_q=*/true);
  std::printf("GQR   rotations: %zu   ||Q'Q - I||: %.2e\n", qr.rotations,
              analysis::orthogonality_loss(qr.q));
  auto sk = factor::givens_qr_sameh_kuck(a, true);
  std::printf("GQR-SK stages:   %zu   (same rotations, O(n) parallel "
              "stages)\n",
              sk.stages);
  auto hh = factor::householder_qr(a, true);
  std::printf("HQR   reflections: %zu  ||Q'Q - I||: %.2e\n", hh.reflections,
              analysis::orthogonality_loss(hh.q));

  // The pivot trace: the object Theorem 3.4 proves P-complete to predict.
  auto gep = factor::gep(a);
  std::printf("\nGEP pivot trace (column: chosen original row):\n%s",
              gep.trace.to_string().c_str());
  return 0;
}
