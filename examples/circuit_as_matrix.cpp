// The paper's central construction, end to end: a boolean circuit is
// compiled into a matrix whose GEM/GEMS elimination COMPUTES the circuit.
//
// We build a 3-bit ripple-carry adder's carry-out as a NAND circuit, compile
// it (Section 2's block assembly), run minimal-pivoting Gaussian
// elimination, and read the sum's carry bit off the bottom-right entry of
// the triangular factor — for every input assignment, including through the
// nonsingular bordering of Corollary 3.2.
#include <cstdio>

#include "circuit/builders.h"
#include "core/simulator.h"

int main() {
  using namespace pfact;
  using circuit::CvpInstance;

  circuit::Circuit adder = circuit::adder_carry_circuit(3);
  std::printf("Circuit: carry-out of a 3-bit adder (%zu NAND gates)\n",
              adder.num_gates());

  CvpInstance probe{adder, std::vector<bool>(6, false)};
  core::GemReduction red = core::build_gem_reduction(probe);
  std::printf("Reduction matrix A_C: order %zu, %zu blocks in %zu layers\n\n",
              red.matrix.rows(), red.plan.blocks.size(),
              red.plan.num_layers);

  std::printf("  a + b    carry | GEM  GEMS  GEM(nonsingular)\n");
  int mismatches = 0;
  for (unsigned av = 0; av < 8; ++av) {
    for (unsigned bv = 0; bv < 8; bv += 3) {  // sample of b values
      std::vector<bool> in(6);
      for (int i = 0; i < 3; ++i) {
        in[i] = (av >> i) & 1;
        in[3 + i] = (bv >> i) & 1;
      }
      CvpInstance inst{adder, in};
      bool expect = inst.expected();
      auto gem = core::simulate_gem<double>(
          inst, factor::PivotStrategy::kMinimalSwap);
      auto gems = core::simulate_gem<double>(
          inst, factor::PivotStrategy::kMinimalShift);
      auto bord = core::simulate_gem_nonsingular<double>(inst);
      std::printf("  %u + %u  ->  %d   |  %d     %d      %d\n", av, bv,
                  expect ? 1 : 0, gem.value ? 1 : 0, gems.value ? 1 : 0,
                  bord.value ? 1 : 0);
      if (!gem.ok || gem.value != expect) ++mismatches;
      if (!gems.ok || gems.value != expect) ++mismatches;
      if (!bord.ok || bord.value != expect) ++mismatches;
    }
  }
  std::printf("\n%s\n", mismatches == 0
                            ? "All factorizations computed the circuit "
                              "correctly."
                            : "MISMATCHES FOUND");
  return mismatches == 0 ? 0 : 1;
}
